"""Stable fingerprints and seed derivation for the execution engine.

Deterministic fan-out needs two properties Python's built-in ``hash``
does not provide: stability across interpreter launches (``str`` hashing
is salted per process) and stability across *where* a task runs (inline
loop, chunked pool worker, resumed sweep).  This module canonicalises a
task description into bytes and digests it with BLAKE2b, so that

- the same logical evaluation always maps to the same cache key, and
- a per-task RNG seed derived from ``(root_seed, task description)`` is
  identical no matter which process draws it or in what order.

Only *value-like* inputs are encodable: ``None``, bools, ints, floats,
strings, bytes, numpy arrays, (frozen) dataclasses, and containers of
those.  Arbitrary objects are rejected loudly -- a silently unstable key
is the one bug a cache must never have.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from typing import Any, List

import numpy as np

__all__ = ["canonical_bytes", "stable_fingerprint", "derive_seed"]

#: Seeds are reduced into numpy's comfortable non-negative int64 range.
_SEED_SPACE = 2**63


def _encode(obj: Any, out: List[bytes]) -> None:
    """Append a type-tagged canonical encoding of ``obj`` to ``out``."""
    if obj is None:
        out.append(b"N;")
    elif isinstance(obj, (bool, np.bool_)):
        out.append(b"B1;" if obj else b"B0;")
    elif isinstance(obj, (int, np.integer)):
        out.append(b"I" + str(int(obj)).encode("ascii") + b";")
    elif isinstance(obj, (float, np.floating)):
        # IEEE-754 bytes: exact, repr-independent, and NaN-safe.
        out.append(b"F" + struct.pack("!d", float(obj)) + b";")
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        out.append(b"S" + str(len(data)).encode("ascii") + b":" + data + b";")
    elif isinstance(obj, bytes):
        out.append(b"Y" + str(len(obj)).encode("ascii") + b":" + obj + b";")
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        head = f"A{arr.dtype.str}{arr.shape}:".encode("ascii")
        out.append(head + arr.tobytes() + b";")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out.append(b"D" + type(obj).__qualname__.encode("utf-8") + b"(")
        for field in dataclasses.fields(obj):
            _encode(field.name, out)
            _encode(getattr(obj, field.name), out)
        out.append(b")")
    elif isinstance(obj, (list, tuple)):
        out.append(b"L(")
        for item in obj:
            _encode(item, out)
        out.append(b")")
    elif isinstance(obj, (set, frozenset)):
        out.append(b"E(")
        encoded = []
        for item in obj:
            chunk: List[bytes] = []
            _encode(item, chunk)
            encoded.append(b"".join(chunk))
        out.extend(sorted(encoded))
        out.append(b")")
    elif isinstance(obj, dict):
        out.append(b"M(")
        for key in sorted(obj, key=repr):
            _encode(key, out)
            _encode(obj[key], out)
        out.append(b")")
    else:
        raise TypeError(
            f"cannot canonically encode {type(obj).__name__!r}; task fields "
            "must be value-like (None/bool/int/float/str/bytes/ndarray/"
            "dataclass/container)"
        )


def canonical_bytes(obj: Any) -> bytes:
    """The canonical byte encoding of ``obj`` (stable across processes)."""
    out: List[bytes] = []
    _encode(obj, out)
    return b"".join(out)


def stable_fingerprint(obj: Any) -> str:
    """A short hex digest identifying ``obj`` by *content*.

    Equal values (same dataclass type, same field values) share the
    fingerprint; any differing field changes it.  Safe as a cache key
    and as a filename.
    """
    return hashlib.blake2b(canonical_bytes(obj), digest_size=16).hexdigest()


def derive_seed(root_seed: int, *parts: Any) -> int:
    """A deterministic child seed for ``(root_seed, *parts)``.

    The derivation hashes the canonical encoding, so the seed depends
    only on the logical identity of the work unit -- never on dispatch
    order, chunking, or which process runs it.  This is what makes
    serial and parallel sweeps bit-identical.
    """
    digest = hashlib.blake2b(
        canonical_bytes((int(root_seed),) + parts), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % _SEED_SPACE
