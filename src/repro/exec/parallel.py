"""Chunked, cache-aware, deterministic dispatch of :class:`EvalTask`\\ s.

:class:`ParallelEvaluator` is the one entry point: give it a list of
tasks and it returns their results *in task order*, bit-identical
whether ``workers=0`` (inline), the tasks ran chunked across a
:class:`~concurrent.futures.ProcessPoolExecutor`, or some results came
out of the :class:`~repro.exec.cache.MPCache`.  Determinism holds
because tasks derive all randomness from their own identity
(:mod:`repro.exec.tasks`) -- the evaluator never has to care about
scheduling order.

Operational behaviour:

- **Serial fallback.**  ``workers=0``, a single pending task, or any
  platform where the pool cannot start (sandboxes without fork/spawn)
  all run inline; a failed pool degrades to inline mid-flight instead
  of failing the sweep.
- **Fork-friendly.**  The pool starts lazily at the first ``map`` call
  and prefers the ``fork`` start method, so workers inherit whatever
  worlds the parent already built (see
  :func:`~repro.exec.tasks.share_context`).
- **Observable.**  Per-task wall time (measured inside the worker) and
  task/failure/chunk counts land in the active metrics registry under
  ``exec.*``, alongside the cache's hit/miss counters.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.exec.cache import MPCache
from repro.exec.tasks import EvalTask
from repro.obs import get_logger
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["ParallelEvaluator"]

logger = get_logger(__name__)

#: Upper bound on tasks per chunk; keeps pool heartbeat and timing
#: granularity reasonable even for huge sweeps.
_CHUNK_CAP = 32


def _run_task_timed(task: EvalTask) -> Tuple[Any, float, Optional[str]]:
    """``(value, seconds, error)`` for one task; never raises."""
    start = perf_counter()
    try:
        value = task.run()
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        return None, perf_counter() - start, f"{type(exc).__name__}: {exc}"
    return value, perf_counter() - start, None


def _run_chunk(tasks: Sequence[EvalTask]) -> List[Tuple[Any, float, Optional[str]]]:
    """Worker-side entry point: run one chunk, returning timed outcomes."""
    return [_run_task_timed(task) for task in tasks]


class ParallelEvaluator:
    """Maps :class:`EvalTask`\\ s to results, optionally across processes.

    Parameters
    ----------
    workers:
        Process count; ``0`` (default) runs every task inline.
    cache:
        Optional :class:`MPCache`; hits skip execution entirely and the
        evaluator guarantees a hit returns the same value a cold run
        would have produced (task results are pure functions of the
        task).
    registry:
        Metrics sink; ``None`` uses the globally active registry.
    chunksize:
        Tasks per pool submission; default balances load as
        ``min(32, ceil(pending / (4 * workers)))``.
    """

    def __init__(
        self,
        workers: int = 0,
        cache: Optional[MPCache] = None,
        registry: Optional[MetricsRegistry] = None,
        chunksize: Optional[int] = None,
    ) -> None:
        self.workers = max(0, int(workers))
        self.cache = cache
        self.chunksize = chunksize
        self._registry = registry
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_broken = False

    # ------------------------------------------------------------------ #

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics sink (the global one unless injected)."""
        return self._registry if self._registry is not None else get_registry()

    def close(self) -> None:
        """Shut down the worker pool (the evaluator stays usable inline)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        """The lazily created pool, or ``None`` when unavailable."""
        if self._pool is None and not self._pool_broken:
            try:
                import multiprocessing

                kwargs = {"max_workers": self.workers}
                # Prefer fork so workers inherit shared worlds built by
                # the parent (zero per-worker rebuild cost on Linux).
                if "fork" in multiprocessing.get_all_start_methods():
                    kwargs["mp_context"] = multiprocessing.get_context("fork")
                self._pool = ProcessPoolExecutor(**kwargs)
            except (OSError, ValueError, RuntimeError, ImportError) as exc:
                logger.warning(
                    "process pool unavailable (%s); running serially", exc
                )
                self.registry.inc("exec.pool_fallbacks")
                self._pool_broken = True
        return self._pool

    # ------------------------------------------------------------------ #

    def _record(self, seconds: float, error: Optional[str], index: int) -> Any:
        reg = self.registry
        reg.inc("exec.tasks")
        reg.observe("exec.task_seconds", seconds)
        if error is not None:
            reg.inc("exec.failures")
            raise ExecutionError(f"evaluation task #{index} failed: {error}")

    def map(self, tasks: Sequence[EvalTask]) -> List[Any]:
        """Results of ``tasks``, in order; cache-aware and chunk-parallel."""
        tasks = list(tasks)
        results: List[Any] = [None] * len(tasks)
        keys: List[Optional[str]] = [None] * len(tasks)
        pending: List[int] = []
        for i, task in enumerate(tasks):
            if self.cache is not None:
                keys[i] = task.fingerprint
                hit, value = self.cache.get(keys[i])
                if hit:
                    results[i] = value
                    continue
            pending.append(i)
        # With a cache, duplicate tasks within one batch collapse onto a
        # single execution; the copies are filled in afterwards.
        duplicates: List[int] = []
        if self.cache is not None:
            first_for_key: dict = {}
            unique_pending: List[int] = []
            for i in pending:
                if keys[i] in first_for_key:
                    duplicates.append(i)
                else:
                    first_for_key[keys[i]] = i
                    unique_pending.append(i)
            pending = unique_pending
        if not pending and not duplicates:
            return results
        self.registry.set_gauge("exec.workers", float(self.workers))
        pool = (
            self._ensure_pool()
            if self.workers > 0 and len(pending) > 1
            else None
        )
        if pool is not None:
            self._map_pool(pool, tasks, pending, results)
        else:
            for i in pending:
                value, seconds, error = _run_task_timed(tasks[i])
                self._record(seconds, error, i)
                results[i] = value
                if self.cache is not None:
                    self.cache.put(keys[i], value)
        if self.cache is not None and pool is not None:
            for i in pending:
                self.cache.put(keys[i], results[i])
        for i in duplicates:
            results[i] = results[first_for_key[keys[i]]]
        return results

    def _map_pool(
        self,
        pool: ProcessPoolExecutor,
        tasks: List[EvalTask],
        pending: List[int],
        results: List[Any],
    ) -> None:
        chunksize = self.chunksize or max(
            1, min(_CHUNK_CAP, math.ceil(len(pending) / (4 * self.workers)))
        )
        chunks = [
            pending[offset : offset + chunksize]
            for offset in range(0, len(pending), chunksize)
        ]
        self.registry.inc("exec.chunks", len(chunks))
        futures = [
            pool.submit(_run_chunk, [tasks[i] for i in chunk]) for chunk in chunks
        ]
        degraded = False
        for chunk, future in zip(chunks, futures):
            if degraded:
                outcomes = _run_chunk([tasks[i] for i in chunk])
            else:
                try:
                    outcomes = future.result()
                except Exception as exc:  # pool died (e.g. OOM-killed worker)
                    logger.warning(
                        "process pool failed mid-run (%s); finishing serially",
                        exc,
                    )
                    self.registry.inc("exec.pool_fallbacks")
                    self._pool_broken = True
                    degraded = True
                    outcomes = _run_chunk([tasks[i] for i in chunk])
            for i, (value, seconds, error) in zip(chunk, outcomes):
                self._record(seconds, error, i)
                results[i] = value
        if degraded:
            self.close()
