"""Chunked, cache-aware, deterministic dispatch of :class:`EvalTask`\\ s.

:class:`ParallelEvaluator` is the one entry point: give it a list of
tasks and it returns their results *in task order*, bit-identical
whether ``workers=0`` (inline), the tasks ran chunked across a
:class:`~concurrent.futures.ProcessPoolExecutor`, or some results came
out of the :class:`~repro.exec.cache.MPCache`.  Determinism holds
because tasks derive all randomness from their own identity
(:mod:`repro.exec.tasks`) -- the evaluator never has to care about
scheduling order.

Operational behaviour:

- **Serial fallback.**  ``workers=0``, a single pending task, or any
  platform where the pool cannot start (sandboxes without fork/spawn)
  all run inline; a failed pool degrades to inline mid-flight instead
  of failing the sweep.
- **Fork-friendly.**  The pool starts lazily at the first ``map`` call
  and prefers the ``fork`` start method, so workers inherit whatever
  worlds the parent already built (see
  :func:`~repro.exec.tasks.share_context`).
- **Observable.**  Per-task wall time (measured inside the worker) and
  task/failure/chunk counts land in the active metrics registry under
  ``exec.*``, alongside the cache's hit/miss counters.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.exec.cache import MPCache
from repro.exec.tasks import EvalTask, hermetic_schemes
from repro.obs import get_logger
from repro.obs.capsule import TelemetryCapsule
from repro.obs.profile import maybe_task_profiler
from repro.obs.registry import MetricsRegistry, get_registry, use_registry
from repro.obs.series import TimeSeriesRecorder
from repro.obs.spans import fresh_span_stack, span

__all__ = ["ParallelEvaluator"]

logger = get_logger(__name__)

#: Upper bound on tasks per chunk; keeps pool heartbeat and timing
#: granularity reasonable even for huge sweeps.
_CHUNK_CAP = 32

#: ``(value, seconds, error, capsule)`` -- one task's complete outcome.
TaskOutcome = Tuple[Any, float, Optional[str], Optional[TelemetryCapsule]]


def _run_task_timed(
    task: EvalTask, capture: bool = False, hermetic: bool = False
) -> TaskOutcome:
    """``(value, seconds, error, capsule)`` for one task; never raises.

    With ``capture`` the task runs under a fresh local registry and an
    empty span stack; everything it records ships back in a
    :class:`TelemetryCapsule` so the dispatching process can merge it --
    this is how worker-side telemetry survives the process boundary, and
    how the serial path stays observationally identical to the pooled one.
    ``hermetic`` additionally builds per-task scheme instances (see
    :func:`~repro.exec.tasks.hermetic_schemes`).
    """
    if not capture:
        start = perf_counter()
        try:
            value = task.run()
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            return None, perf_counter() - start, f"{type(exc).__name__}: {exc}", None
        return value, perf_counter() - start, None, None
    local = MetricsRegistry()
    # A task that closes epochs (e.g. an online replay) records series
    # into its local recorder; the points ride home in the capsule and
    # union into the parent's recorder.  Tasks that never snapshot leave
    # the recorder empty, and empty recorders are not shipped.
    local.attach_series(TimeSeriesRecorder())
    value, error = None, None
    start = perf_counter()
    with fresh_span_stack(), use_registry(local), hermetic_schemes(hermetic):
        # When profiling is globally enabled, each captured task samples
        # itself into its local registry -- the samples ride back in the
        # capsule and merge in task order, exactly like counters.  The
        # task profiler nests above any CLI-level profiler, so inline
        # (workers=0) dispatch never double-counts a sample.
        profiler = maybe_task_profiler(local)
        try:
            with span("exec.task", local) as record:
                record.annotate(task=type(task).__name__)
                try:
                    value = task.run()
                except Exception as exc:  # noqa: BLE001 - reported to the parent
                    error = f"{type(exc).__name__}: {exc}"
        finally:
            if profiler is not None:
                profiler.stop()
    seconds = perf_counter() - start
    return value, seconds, error, TelemetryCapsule.capture(local)


def _run_chunk(
    tasks: Sequence[EvalTask], capture: bool = False, hermetic: bool = False
) -> List[TaskOutcome]:
    """Worker-side entry point: run one chunk, returning timed outcomes."""
    return [_run_task_timed(task, capture, hermetic) for task in tasks]


class ParallelEvaluator:
    """Maps :class:`EvalTask`\\ s to results, optionally across processes.

    Parameters
    ----------
    workers:
        Process count; ``0`` (default) runs every task inline.
    cache:
        Optional :class:`MPCache`; hits skip execution entirely and the
        evaluator guarantees a hit returns the same value a cold run
        would have produced (task results are pure functions of the
        task).
    registry:
        Metrics sink; ``None`` uses the globally active registry.  When
        the sink is collecting, every task (inline or pooled) runs under
        a fresh local registry and its telemetry is merged back as a
        :class:`~repro.obs.capsule.TelemetryCapsule` -- worker metrics
        and spans are never dropped.
    chunksize:
        Tasks per pool submission; default balances load as
        ``min(32, ceil(pending / (4 * workers)))``.
    hermetic_telemetry:
        Build a fresh scheme per captured task instead of sharing the
        process-local instance.  Results are unchanged, but merged
        metrics become bit-identical at any worker count (shared-scheme
        cache hit/miss counts otherwise depend on task packing).  Costs
        cross-task report-cache amortization; off by default.
    """

    def __init__(
        self,
        workers: int = 0,
        cache: Optional[MPCache] = None,
        registry: Optional[MetricsRegistry] = None,
        chunksize: Optional[int] = None,
        hermetic_telemetry: bool = False,
    ) -> None:
        self.workers = max(0, int(workers))
        self.cache = cache
        self.chunksize = chunksize
        self.hermetic_telemetry = bool(hermetic_telemetry)
        self._registry = registry
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_broken = False

    # ------------------------------------------------------------------ #

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics sink (the global one unless injected)."""
        return self._registry if self._registry is not None else get_registry()

    def close(self) -> None:
        """Shut down the worker pool (the evaluator stays usable inline)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        """The lazily created pool, or ``None`` when unavailable."""
        if self._pool is None and not self._pool_broken:
            try:
                import multiprocessing

                kwargs = {"max_workers": self.workers}
                # Prefer fork so workers inherit shared worlds built by
                # the parent (zero per-worker rebuild cost on Linux).
                if "fork" in multiprocessing.get_all_start_methods():
                    kwargs["mp_context"] = multiprocessing.get_context("fork")
                self._pool = ProcessPoolExecutor(**kwargs)
            except (OSError, ValueError, RuntimeError, ImportError) as exc:
                logger.warning(
                    "process pool unavailable (%s); running serially", exc
                )
                self.registry.inc("exec.pool_fallbacks")
                self._pool_broken = True
        return self._pool

    # ------------------------------------------------------------------ #

    def _record(
        self,
        seconds: float,
        error: Optional[str],
        index: int,
        capsule: Optional[TelemetryCapsule],
        parent_path: str,
        base_depth: int,
    ) -> Any:
        reg = self.registry
        if capsule is not None:
            # Merge before any failure is raised so a crashing task's
            # telemetry (its spans, partial counters) is never lost.
            capsule.merge_into(reg, parent_path=parent_path, base_depth=base_depth)
        reg.inc("exec.tasks")
        reg.observe("exec.task_seconds", seconds)
        if error is not None:
            reg.inc("exec.failures")
            raise ExecutionError(f"evaluation task #{index} failed: {error}")

    def map(self, tasks: Sequence[EvalTask]) -> List[Any]:
        """Results of ``tasks``, in order; cache-aware and chunk-parallel."""
        tasks = list(tasks)
        from repro.obs.ledger import note_tasks

        note_tasks(tasks)  # no-op unless a run-ledger capture is active
        results: List[Any] = [None] * len(tasks)
        keys: List[Optional[str]] = [None] * len(tasks)
        pending: List[int] = []
        for i, task in enumerate(tasks):
            if self.cache is not None:
                keys[i] = task.fingerprint
                hit, value = self.cache.get(keys[i])
                if hit:
                    results[i] = value
                    continue
            pending.append(i)
        # With a cache, duplicate tasks within one batch collapse onto a
        # single execution; the copies are filled in afterwards.
        duplicates: List[int] = []
        if self.cache is not None:
            first_for_key: dict = {}
            unique_pending: List[int] = []
            for i in pending:
                if keys[i] in first_for_key:
                    duplicates.append(i)
                else:
                    first_for_key[keys[i]] = i
                    unique_pending.append(i)
            pending = unique_pending
        if not pending and not duplicates:
            return results
        reg = self.registry
        capture = bool(reg.enabled)
        reg.set_gauge("exec.workers", float(self.workers))
        pool = (
            self._ensure_pool()
            if self.workers > 0 and len(pending) > 1
            else None
        )
        with span("exec.map", reg) as map_span:
            map_span.annotate(tasks=len(tasks), pending=len(pending))
            parent_path = map_span.path
            base_depth = map_span.depth + 1
            if pool is not None:
                self._map_pool(
                    pool, tasks, pending, results, capture,
                    parent_path, base_depth,
                )
            else:
                for i in pending:
                    value, seconds, error, capsule = _run_task_timed(
                        tasks[i], capture, self.hermetic_telemetry
                    )
                    self._record(
                        seconds, error, i, capsule, parent_path, base_depth
                    )
                    results[i] = value
                    if self.cache is not None:
                        self.cache.put(keys[i], value)
        if self.cache is not None and pool is not None:
            for i in pending:
                self.cache.put(keys[i], results[i])
        for i in duplicates:
            results[i] = results[first_for_key[keys[i]]]
        return results

    def _map_pool(
        self,
        pool: ProcessPoolExecutor,
        tasks: List[EvalTask],
        pending: List[int],
        results: List[Any],
        capture: bool,
        parent_path: str,
        base_depth: int,
    ) -> None:
        chunksize = self.chunksize or max(
            1, min(_CHUNK_CAP, math.ceil(len(pending) / (4 * self.workers)))
        )
        chunks = [
            pending[offset : offset + chunksize]
            for offset in range(0, len(pending), chunksize)
        ]
        self.registry.inc("exec.chunks", len(chunks))
        hermetic = self.hermetic_telemetry
        futures = [
            pool.submit(
                _run_chunk, [tasks[i] for i in chunk], capture, hermetic
            )
            for chunk in chunks
        ]
        degraded = False
        for chunk, future in zip(chunks, futures):
            if degraded:
                outcomes = _run_chunk([tasks[i] for i in chunk], capture, hermetic)
            else:
                try:
                    outcomes = future.result()
                except Exception as exc:  # pool died (e.g. OOM-killed worker)
                    logger.warning(
                        "process pool failed mid-run (%s); finishing serially",
                        exc,
                    )
                    self.registry.inc("exec.pool_fallbacks")
                    self._pool_broken = True
                    degraded = True
                    outcomes = _run_chunk(
                        [tasks[i] for i in chunk], capture, hermetic
                    )
            for i, (value, seconds, error, capsule) in zip(chunk, outcomes):
                self._record(seconds, error, i, capsule, parent_path, base_depth)
                results[i] = value
        if degraded:
            self.close()
