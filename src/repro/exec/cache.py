"""Content-addressed memoization of MP evaluations.

Every :class:`~repro.exec.tasks.EvalTask` has a stable fingerprint
(:func:`~repro.exec.hashing.stable_fingerprint`), so an evaluation's
result can be reused whenever the *same logical work* comes up again:
the Procedure 2 optimizer re-probing an overlapping subarea centre, a
sensitivity sweep re-running with one threshold changed, or a benchmark
repeated across processes.

Two layers:

- **in-memory** -- a plain dict, always on;
- **on-disk** (optional) -- one pickle file per entry named by the
  fingerprint, so a ``cache_dir`` shared between runs (or between the
  pool's workers and the parent) turns repeated sweeps into reads.

Writes go through a temp file + :func:`os.replace` so concurrent
writers (pool workers, parallel benches) can never leave a torn entry;
unreadable entries are treated as misses and overwritten.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Optional, Tuple

from repro.obs.logging_setup import get_logger
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["MPCache"]

logger = get_logger(__name__)


class MPCache:
    """In-memory + optional on-disk store keyed by task fingerprints.

    Parameters
    ----------
    cache_dir:
        Directory for persistent entries (created if missing); ``None``
        keeps the cache purely in-memory.
    registry:
        Metrics sink for hit/miss counters; ``None`` uses the globally
        active registry at call time.
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._memory: dict = {}
        self._dir: Optional[Path] = None
        self._registry = registry
        self._warned_corrupt = False
        if cache_dir is not None:
            self._dir = Path(cache_dir)
            self._dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics sink (the global one unless injected)."""
        return self._registry if self._registry is not None else get_registry()

    @property
    def cache_dir(self) -> Optional[Path]:
        """The persistence directory, or ``None`` for memory-only."""
        return self._dir

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: str) -> Path:
        assert self._dir is not None
        return self._dir / f"{key}.pkl"

    # ------------------------------------------------------------------ #

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for ``key``; counts the outcome in metrics."""
        if key in self._memory:
            self.registry.inc("exec.cache.hits")
            return True, self._memory[key]
        if self._dir is not None:
            path = self._path(key)
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except FileNotFoundError:
                pass  # never persisted: an ordinary miss
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
                # The entry exists but cannot be read back: disk rot, a
                # torn write from a crashed process, or a stale pickle
                # from an incompatible version.  Still a miss (the value
                # is recomputed and overwritten), but one worth seeing.
                self.registry.inc("exec.cache.corrupt")
                if not self._warned_corrupt:
                    self._warned_corrupt = True
                    logger.warning(
                        "cache_dir=%s entry=%s unreadable; treating as a "
                        "miss (further corrupt entries counted in "
                        "exec.cache.corrupt without logging)",
                        self._dir,
                        path.name,
                    )
            else:
                self._memory[key] = value
                self.registry.inc("exec.cache.hits")
                self.registry.inc("exec.cache.disk_hits")
                return True, value
        self.registry.inc("exec.cache.misses")
        return False, None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (memory, plus disk when enabled)."""
        self._memory[key] = value
        self.registry.inc("exec.cache.puts")
        if self._dir is None:
            return
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            # Persistence is best-effort; the in-memory entry stands.
            self.registry.inc("exec.cache.write_errors")
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries survive)."""
        self._memory.clear()
