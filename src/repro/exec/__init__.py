"""Deterministic parallel evaluation engine with a content-addressed cache.

``repro.exec`` turns the repo's embarrassingly parallel workloads (the
Fig 2-4 MP surfaces, the E7 headline comparison, Procedure 2 region
search, the landscape heatmap, sensitivity sweeps) into pickleable
:class:`~repro.exec.tasks.EvalTask` units dispatched by a
:class:`~repro.exec.parallel.ParallelEvaluator`.  Results are
bit-identical serial vs parallel because every task derives its
randomness from a stable hash of its own identity
(:func:`~repro.exec.hashing.derive_seed`), and repeated work is elided
by the fingerprint-keyed :class:`~repro.exec.cache.MPCache`.
"""

from repro.exec.cache import MPCache
from repro.exec.hashing import canonical_bytes, derive_seed, stable_fingerprint
from repro.exec.parallel import ParallelEvaluator
from repro.exec.tasks import (
    EvalTask,
    LandscapeProbeTask,
    PopulationEvalTask,
    RegionProbeTask,
    SensitivityTask,
    get_shared_challenge,
    get_shared_context,
    get_shared_scheme,
    region_probe_batch,
    share_challenge,
    share_context,
)

__all__ = [
    "MPCache",
    "ParallelEvaluator",
    "EvalTask",
    "PopulationEvalTask",
    "RegionProbeTask",
    "LandscapeProbeTask",
    "SensitivityTask",
    "canonical_bytes",
    "stable_fingerprint",
    "derive_seed",
    "share_context",
    "get_shared_context",
    "share_challenge",
    "get_shared_challenge",
    "get_shared_scheme",
    "region_probe_batch",
]
