"""The correlation experiment (paper Section V-D, Figure 7).

The paper takes the unfair rating datasets with the top 10 MP values,
re-orders *which value is given at which time* in two ways -- the
Procedure 3 heuristic (anti-correlate with the preceding fair value) and
random shuffles (5 per dataset) -- and compares the resulting MP values.
Finding: the heuristic ordering beats the original human ordering most of
the time, and the random re-orderings bracket the original; correlation
with the fair ratings is an unexploited attack dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackSubmission, build_attack_stream
from repro.attacks.correlation import heuristic_correlation_match, random_match
from repro.errors import ValidationError
from repro.types import RatingDataset, RatingStream
from repro.utils.rng import SeedLike, resolve_rng

__all__ = ["CorrelationRow", "CorrelationExperiment"]


@dataclass(frozen=True)
class CorrelationRow:
    """Figure 7 data for one top-MP dataset."""

    submission_id: str
    original_mp: float
    heuristic_mp: float
    random_mps: Tuple[float, ...]

    @property
    def random_mean(self) -> float:
        """Mean MP over the random re-orderings."""
        return float(np.mean(self.random_mps)) if self.random_mps else float("nan")

    @property
    def heuristic_wins(self) -> bool:
        """Whether the heuristic ordering beat the original."""
        return self.heuristic_mp > self.original_mp


def _reorder_stream(
    stream: RatingStream,
    fair_stream: RatingStream,
    mode: str,
    rng,
) -> RatingStream:
    """A copy of ``stream`` with values re-assigned to its times."""
    if mode == "heuristic":
        times, values = heuristic_correlation_match(
            stream.times, stream.values, fair_stream
        )
    elif mode == "random":
        times, values = random_match(stream.times, stream.values, seed=rng)
    else:
        raise ValidationError(f"unknown reorder mode {mode!r}")
    return build_attack_stream(stream.product_id, times, values, stream.rater_ids)


def reorder_submission(
    submission: AttackSubmission,
    fair_dataset: RatingDataset,
    mode: str,
    seed: SeedLike = None,
    suffix: str = "",
) -> AttackSubmission:
    """A submission with every attacked product's values re-ordered."""
    rng = resolve_rng(seed)
    streams = {
        product_id: _reorder_stream(stream, fair_dataset[product_id], mode, rng)
        for product_id, stream in submission.streams.items()
    }
    return AttackSubmission(
        submission_id=submission.submission_id + suffix,
        streams=streams,
        strategy=submission.strategy,
        params=dict(submission.params, reorder=mode),
    )


class CorrelationExperiment:
    """Runs the Figure 7 comparison over the top-MP submissions."""

    def __init__(self, top_n: int = 10, random_shuffles: int = 5) -> None:
        if top_n < 1:
            raise ValidationError(f"top_n must be >= 1, got {top_n}")
        if random_shuffles < 1:
            raise ValidationError(
                f"random_shuffles must be >= 1, got {random_shuffles}"
            )
        self.top_n = top_n
        self.random_shuffles = random_shuffles

    def select_top(
        self,
        submissions: Sequence[AttackSubmission],
        results: Dict[str, "object"],
    ) -> List[AttackSubmission]:
        """The ``top_n`` submissions by total MP under the given results."""
        ranked = sorted(
            submissions,
            key=lambda s: -results[s.submission_id].total,
        )
        return list(ranked[: self.top_n])

    def run(
        self,
        challenge,
        submissions: Sequence[AttackSubmission],
        results: Dict[str, "object"],
        scheme,
        seed: SeedLike = None,
    ) -> List[CorrelationRow]:
        """Full experiment: re-order each top submission and re-score it.

        ``results`` are the submissions' original MP results under
        ``scheme`` (used both for ranking and as the "original" bar).
        """
        rng = resolve_rng(seed)
        rows: List[CorrelationRow] = []
        for submission in self.select_top(submissions, results):
            original_mp = float(results[submission.submission_id].total)
            heuristic = reorder_submission(
                submission, challenge.fair_dataset, "heuristic", suffix="_heur"
            )
            heuristic_mp = challenge.evaluate(heuristic, scheme, validate=False).total
            random_mps = []
            for shuffle_idx in range(self.random_shuffles):
                shuffled = reorder_submission(
                    submission,
                    challenge.fair_dataset,
                    "random",
                    seed=rng,
                    suffix=f"_rand{shuffle_idx}",
                )
                random_mps.append(
                    challenge.evaluate(shuffled, scheme, validate=False).total
                )
            rows.append(
                CorrelationRow(
                    submission_id=submission.submission_id,
                    original_mp=original_mp,
                    heuristic_mp=float(heuristic_mp),
                    random_mps=tuple(float(v) for v in random_mps),
                )
            )
        return rows

    @staticmethod
    def heuristic_win_fraction(rows: Sequence[CorrelationRow]) -> float:
        """Fraction of datasets where the heuristic beat the original."""
        if not rows:
            raise ValidationError("no correlation rows")
        wins = sum(1 for row in rows if row.heuristic_wins)
        return wins / len(rows)
