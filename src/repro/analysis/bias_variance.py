"""Variance-bias analysis of attack submissions (paper Section V-B).

For one product, a submission's unfair ratings are summarized by

- **bias** -- mean(unfair values) - mean(fair values), negative for
  downgrading;
- **std** -- the standard deviation of the unfair values.

Strong submissions are marked like the paper marks its scatter points:

- **AMP** -- the submission is among the top 10 *overall* MP values;
- **LMP(k)** -- among submissions with negative bias on product ``k``, its
  product-``k`` MP is in the top 10;
- **UMP(k)** -- same with positive bias.

Colour coding follows the paper's legend (grey, green=AMP, pink=LMP,
cyan=UMP, red=AMP+LMP, blue=AMP+UMP).

For negative bias the plane splits into the three regions of the paper's
discussion: R1 (large bias, small-medium variance), R2 (medium bias,
small-medium variance), R3 (medium bias, medium-large variance).  The key
reproduction check: LMP winners cluster in **R3 under the P-scheme** but
in **R1 under the SA/BF schemes**.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackSubmission
from repro.errors import ValidationError
from repro.marketplace.mp import MPResult
from repro.types import RatingDataset

__all__ = [
    "Region",
    "classify_region",
    "submission_bias_std",
    "SubmissionPoint",
    "VarianceBiasAnalysis",
]


class Region(enum.Enum):
    """Regions of the negative-bias half of the variance-bias plane."""

    R1 = "R1"  # large negative bias, small-to-medium variance
    R2 = "R2"  # medium bias, small-to-medium variance
    R3 = "R3"  # medium bias, medium-to-large variance
    OTHER = "other"  # positive bias or outside the R1-R3 partition


def classify_region(
    bias: float,
    std: float,
    bias_split: float = -2.5,
    std_split: float = 0.6,
) -> Region:
    """Classify one (bias, std) point into R1/R2/R3.

    The paper describes the regions qualitatively; the default splits put
    "large" bias beyond -2.5 and "medium-to-large" variance above 0.6.
    Positive-bias points return :attr:`Region.OTHER` (the paper notes the
    boosting half has too little resolution to partition).
    """
    if bias >= 0:
        return Region.OTHER
    if bias <= bias_split:
        return Region.R1 if std <= std_split else Region.OTHER
    return Region.R2 if std <= std_split else Region.R3


def submission_bias_std(
    submission: AttackSubmission,
    fair_dataset: RatingDataset,
    product_id: str,
) -> Optional[Tuple[float, float]]:
    """``(bias, std)`` of a submission's unfair values on one product.

    ``None`` when the submission does not attack the product.
    """
    stream = submission.stream_for(product_id)
    if stream is None or len(stream) == 0:
        return None
    fair_mean = fair_dataset[product_id].mean_value()
    return (
        float(stream.values.mean() - fair_mean),
        float(stream.values.std()),
    )


@dataclass
class SubmissionPoint:
    """One scatter point of a Figure 2/3/4 style plot."""

    submission_id: str
    strategy: str
    bias: float
    std: float
    product_mp: float
    total_mp: float
    marks: set = field(default_factory=set)

    @property
    def region(self) -> Region:
        """R1/R2/R3 classification of the point."""
        return classify_region(self.bias, self.std)

    @property
    def color(self) -> str:
        """The paper's colour legend for this point's mark combination."""
        has_amp = "AMP" in self.marks
        has_lmp = "LMP" in self.marks
        has_ump = "UMP" in self.marks
        if has_amp and has_lmp:
            return "red"
        if has_amp and has_ump:
            return "blue"
        if has_amp:
            return "green"
        if has_lmp:
            return "pink"
        if has_ump:
            return "cyan"
        return "grey"


class VarianceBiasAnalysis:
    """Builds the variance-bias scatter for one product and one scheme."""

    def __init__(self, top_n: int = 10) -> None:
        if top_n < 1:
            raise ValidationError(f"top_n must be >= 1, got {top_n}")
        self.top_n = top_n

    def build_points(
        self,
        submissions: Sequence[AttackSubmission],
        results: Dict[str, MPResult],
        fair_dataset: RatingDataset,
        product_id: str,
    ) -> List[SubmissionPoint]:
        """Scatter points for ``product_id`` with AMP/LMP/UMP marks.

        ``results`` maps submission id to its MP result under the scheme
        being analysed.  Submissions that do not attack ``product_id``
        are skipped (they have no (bias, std) on this product).
        """
        points: List[SubmissionPoint] = []
        for submission in submissions:
            if submission.submission_id not in results:
                raise ValidationError(
                    f"no MP result for submission {submission.submission_id!r}"
                )
            stats = submission_bias_std(submission, fair_dataset, product_id)
            if stats is None:
                continue
            bias, std = stats
            result = results[submission.submission_id]
            points.append(
                SubmissionPoint(
                    submission_id=submission.submission_id,
                    strategy=submission.strategy,
                    bias=bias,
                    std=std,
                    product_mp=float(result.per_product.get(product_id, 0.0)),
                    total_mp=float(result.total),
                )
            )
        self._apply_marks(points)
        return points

    def _apply_marks(self, points: List[SubmissionPoint]) -> None:
        if not points:
            return
        by_total = sorted(points, key=lambda p: -p.total_mp)
        for point in by_total[: self.top_n]:
            point.marks.add("AMP")
        negative = sorted(
            (p for p in points if p.bias < 0), key=lambda p: -p.product_mp
        )
        for point in negative[: self.top_n]:
            point.marks.add("LMP")
        positive = sorted(
            (p for p in points if p.bias >= 0), key=lambda p: -p.product_mp
        )
        for point in positive[: self.top_n]:
            point.marks.add("UMP")

    # ------------------------------------------------------------------ #

    @staticmethod
    def winner_region_counts(points: Sequence[SubmissionPoint]) -> Dict[Region, int]:
        """How many LMP winners fall into each region.

        This is the quantitative form of the paper's headline reading of
        Figures 2-4 ("the submissions with large MP values are
        concentrated in region ...").
        """
        counts: Dict[Region, int] = {r: 0 for r in Region}
        for point in points:
            if "LMP" in point.marks:
                counts[point.region] += 1
        return counts

    @staticmethod
    def dominant_winner_region(points: Sequence[SubmissionPoint]) -> Optional[Region]:
        """The region holding the most LMP winners (ties broken R1<R2<R3)."""
        counts = VarianceBiasAnalysis.winner_region_counts(points)
        total = sum(counts.values())
        if total == 0:
            return None
        order = [Region.R1, Region.R2, Region.R3, Region.OTHER]
        return max(order, key=lambda r: counts[r])

    @staticmethod
    def mean_winner_point(
        points: Sequence[SubmissionPoint],
    ) -> Optional[Tuple[float, float]]:
        """Centroid (bias, std) of the LMP winners."""
        winners = [p for p in points if "LMP" in p.marks]
        if not winners:
            return None
        return (
            float(np.mean([p.bias for p in winners])),
            float(np.mean([p.std for p in winners])),
        )
