"""Time-domain analysis of attack data (paper Section V-C, Figure 6).

For one product under one defense scheme, each submission contributes a
point ``(average rating interval, MP)`` where the average interval is the
attack duration divided by the number of unfair ratings.  The paper's
finding: an interior optimum exists (about 3 days under the P-scheme with
monthly MP) -- too concentrated trips the arrival-rate detectors, too
spread dilutes the monthly score shift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackSubmission
from repro.errors import ValidationError
from repro.marketplace.mp import MPResult

__all__ = ["TimePoint", "TimeDomainAnalysis"]


@dataclass(frozen=True)
class TimePoint:
    """One dot of the Figure 6 scatter."""

    submission_id: str
    strategy: str
    average_interval: float
    product_mp: float


class TimeDomainAnalysis:
    """Builds the interval-vs-MP scatter and locates the best interval."""

    def __init__(self, n_bins: int = 12, max_interval: Optional[float] = None) -> None:
        if n_bins < 2:
            raise ValidationError(f"n_bins must be >= 2, got {n_bins}")
        self.n_bins = n_bins
        self.max_interval = max_interval

    def build_points(
        self,
        submissions: Sequence[AttackSubmission],
        results: Dict[str, MPResult],
        product_id: str,
    ) -> List[TimePoint]:
        """Scatter points for one product under one scheme's MP results."""
        points: List[TimePoint] = []
        for submission in submissions:
            stream = submission.stream_for(product_id)
            if stream is None or len(stream) == 0:
                continue
            result = results.get(submission.submission_id)
            if result is None:
                raise ValidationError(
                    f"no MP result for submission {submission.submission_id!r}"
                )
            points.append(
                TimePoint(
                    submission_id=submission.submission_id,
                    strategy=submission.strategy,
                    average_interval=submission.average_rating_interval(product_id),
                    product_mp=float(result.per_product.get(product_id, 0.0)),
                )
            )
        return points

    # ------------------------------------------------------------------ #

    def binned_envelope(
        self, points: Sequence[TimePoint]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(bin_centers, max_mp, mean_mp)`` over interval bins.

        The *max* envelope is what exposes the interior optimum: at every
        interval many weak submissions exist, but the strongest achievable
        MP peaks at the best interval.
        Bins with no points carry NaN.
        """
        if not points:
            raise ValidationError("no points to bin")
        intervals = np.asarray([p.average_interval for p in points])
        mps = np.asarray([p.product_mp for p in points])
        upper = self.max_interval
        if upper is None:
            upper = float(intervals.max()) + 1e-9
        edges = np.linspace(0.0, upper, self.n_bins + 1)
        centers = (edges[:-1] + edges[1:]) / 2.0
        max_mp = np.full(self.n_bins, np.nan)
        mean_mp = np.full(self.n_bins, np.nan)
        for i in range(self.n_bins):
            mask = (intervals >= edges[i]) & (intervals < edges[i + 1])
            if mask.any():
                max_mp[i] = float(mps[mask].max())
                mean_mp[i] = float(mps[mask].mean())
        return centers, max_mp, mean_mp

    def best_interval(self, points: Sequence[TimePoint]) -> float:
        """Bin-centre interval where the max-MP envelope peaks."""
        centers, max_mp, _ = self.binned_envelope(points)
        finite = np.isfinite(max_mp)
        if not finite.any():
            raise ValidationError("all interval bins are empty")
        idx = int(np.nanargmax(max_mp))
        return float(centers[idx])

    def is_interior_optimum(self, points: Sequence[TimePoint]) -> bool:
        """Whether the envelope peaks strictly inside the interval range.

        The paper's qualitative claim: neither the most concentrated nor
        the most spread attacks achieve the highest MP.
        """
        centers, max_mp, _ = self.binned_envelope(points)
        finite = np.nonzero(np.isfinite(max_mp))[0]
        if finite.size < 3:
            return False
        idx = int(np.nanargmax(max_mp))
        return finite[0] < idx < finite[-1]
