"""Analyses of attack data (paper Section V).

- :mod:`repro.analysis.bias_variance` -- the variance-bias plane of
  Figures 2-4: per-submission (bias, sigma) extraction, AMP/LMP/UMP
  top-10 marking, colour coding, and R1/R2/R3 region classification.
- :mod:`repro.analysis.time_domain` -- the Figure 6 time analysis
  (MP versus average unfair-rating interval).
- :mod:`repro.analysis.correlation_exp` -- the Figure 7 experiment
  (heuristic correlation versus original versus random ordering).
- :mod:`repro.analysis.reporting` -- plain-text tables/series used by the
  benchmark harness to print the paper's rows.
"""

from repro.analysis.bias_variance import (
    Region,
    SubmissionPoint,
    VarianceBiasAnalysis,
    classify_region,
    submission_bias_std,
)
from repro.analysis.correlation_exp import CorrelationExperiment, CorrelationRow
from repro.analysis.landscape import MPLandscape, sweep_landscape
from repro.analysis.reporting import format_series, format_table
from repro.analysis.time_domain import TimeDomainAnalysis, TimePoint

__all__ = [
    "Region",
    "SubmissionPoint",
    "VarianceBiasAnalysis",
    "classify_region",
    "submission_bias_std",
    "CorrelationExperiment",
    "CorrelationRow",
    "MPLandscape",
    "sweep_landscape",
    "format_series",
    "format_table",
    "TimeDomainAnalysis",
    "TimePoint",
]
