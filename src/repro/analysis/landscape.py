"""Controlled MP landscape over the variance-bias plane.

Figures 2-4 scatter *population* submissions over (bias, sigma); the
landscape sweep is the controlled-experiment version: a grid of (bias,
sigma) points, each probed with freshly generated attacks of identical
timing policy, against any defense scheme.  It quantifies the same story
the scatter plots tell — where each defense is weak — without the
population's sampling noise, and it powers the ablation-style comparisons
(e.g. how a config change moves the weak region).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.attacks.base import ProductTarget
from repro.attacks.generator import AttackGenerator, AttackSpec
from repro.attacks.time_models import TimeModel, UniformWindow
from repro.errors import ValidationError
from repro.utils.rng import SeedLike

__all__ = ["MPLandscape", "sweep_landscape"]


@dataclass(frozen=True)
class MPLandscape:
    """MP measured over a (bias, sigma) grid for one scheme.

    ``mp[i, j]`` is the maximum MP over the probes at
    ``(bias_values[i], std_values[j])``.
    """

    scheme_name: str
    bias_values: np.ndarray
    std_values: np.ndarray
    mp: np.ndarray

    def __post_init__(self) -> None:
        if self.mp.shape != (self.bias_values.size, self.std_values.size):
            raise ValidationError(
                f"mp grid shape {self.mp.shape} does not match axes "
                f"({self.bias_values.size}, {self.std_values.size})"
            )
        for arr in (self.bias_values, self.std_values, self.mp):
            arr.setflags(write=False)

    @property
    def peak(self) -> Tuple[float, float, float]:
        """``(bias, std, mp)`` of the strongest grid point."""
        i, j = np.unravel_index(int(np.argmax(self.mp)), self.mp.shape)
        return (
            float(self.bias_values[i]),
            float(self.std_values[j]),
            float(self.mp[i, j]),
        )

    def column_means(self) -> np.ndarray:
        """Mean MP per sigma column (how much variance helps overall)."""
        return self.mp.mean(axis=0)

    def row_means(self) -> np.ndarray:
        """Mean MP per bias row."""
        return self.mp.mean(axis=1)

    def to_text(self) -> str:
        """Render the grid as a table (rows = bias, columns = sigma)."""
        headers = ["bias \\ std"] + [f"{s:.2f}" for s in self.std_values]
        rows = []
        for i, bias in enumerate(self.bias_values):
            rows.append([f"{bias:.2f}"] + [float(v) for v in self.mp[i]])
        table = format_table(
            headers,
            rows,
            float_format=".2f",
            title=f"MP landscape, {self.scheme_name}-scheme (max over probes)",
        )
        bias, std, mp = self.peak
        return table + f"\npeak: bias={bias:.2f}, std={std:.2f}, MP={mp:.3f}"


def sweep_landscape(
    challenge,
    scheme,
    bias_values: Sequence[float] = (-4.0, -3.0, -2.0, -1.0),
    std_values: Sequence[float] = (0.1, 0.5, 1.0, 1.5),
    probes: int = 3,
    n_ratings: int = 50,
    time_model: Optional[TimeModel] = None,
    targets: Optional[List[ProductTarget]] = None,
    seed: SeedLike = 0,
    evaluator=None,
) -> MPLandscape:
    """Probe every (bias, sigma) grid point against ``scheme``.

    Each point is probed ``probes`` times with fresh random value draws
    (fixed timing policy, so the landscape isolates the value dimensions)
    and the maximum MP is recorded.  ``bias_values`` are signed: negative
    biases downgrade the downgrade-targets; the boost targets always
    receive the mirrored positive bias (the attack generator applies the
    target's direction to the magnitude).

    With ``evaluator`` (a :class:`~repro.exec.ParallelEvaluator`), each
    grid point becomes a :class:`~repro.exec.LandscapeProbeTask`: the
    whole grid fans out in one dispatch with per-point derived seeds, so
    the surface is identical at any worker count (though not to the
    serial default path, whose probes share one RNG stream).  Requires a
    seed-reconstructible challenge (``RatingChallenge(seed=...)``) and an
    integer ``seed``.
    """
    if probes < 1:
        raise ValidationError(f"probes must be >= 1, got {probes}")
    bias_arr = np.asarray(list(bias_values), dtype=float)
    std_arr = np.asarray(list(std_values), dtype=float)
    if bias_arr.size == 0 or std_arr.size == 0:
        raise ValidationError("bias_values and std_values must be non-empty")
    if time_model is None:
        span = challenge.end_day - challenge.start_day
        time_model = UniformWindow(challenge.start_day + 0.2 * span, 0.6 * span)
    if targets is None:
        by_volume = sorted(
            challenge.fair_dataset.product_ids,
            key=lambda pid: len(challenge.fair_dataset[pid]),
        )
        targets = [
            ProductTarget(by_volume[0], -1),
            ProductTarget(by_volume[1], -1),
            ProductTarget(by_volume[2], +1),
            ProductTarget(by_volume[3], +1),
        ]
    scheme_name = getattr(scheme, "name", type(scheme).__name__)
    grid = np.zeros((bias_arr.size, std_arr.size))
    if evaluator is not None:
        from repro.exec import LandscapeProbeTask, share_challenge

        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValidationError(
                "the evaluator path needs an integer seed to derive "
                "per-point RNG streams from"
            )
        share_challenge(challenge)  # raises unless seed-reconstructible
        tasks = [
            LandscapeProbeTask(
                challenge_seed=challenge.seed,
                scheme_name=scheme_name,
                bias=float(bias),
                std=float(std),
                probes=probes,
                n_ratings=n_ratings,
                time_model=time_model,
                targets=tuple(targets),
                seed_root=seed,
            )
            for bias in bias_arr
            for std in std_arr
        ]
        values = evaluator.map(tasks)
        grid[:] = np.asarray(values, dtype=float).reshape(grid.shape)
        return MPLandscape(
            scheme_name=scheme_name,
            bias_values=bias_arr,
            std_values=std_arr,
            mp=grid,
        )
    generator = AttackGenerator(
        challenge.fair_dataset,
        challenge.config.biased_rater_ids(),
        scale=challenge.config.scale,
        seed=seed,
    )
    for i, bias in enumerate(bias_arr):
        for j, std in enumerate(std_arr):
            spec_proto = AttackSpec(
                bias_magnitude=abs(float(bias)),
                std=float(std),
                n_ratings=n_ratings,
                time_model=time_model,
            )
            best = 0.0
            for _ in range(probes):
                submission = generator.generate(targets, spec_proto)
                result = challenge.evaluate(submission, scheme, validate=False)
                best = max(best, result.total)
            grid[i, j] = best
    return MPLandscape(
        scheme_name=scheme_name,
        bias_values=bias_arr,
        std_values=std_arr,
        mp=grid,
    )
