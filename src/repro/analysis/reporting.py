"""Plain-text rendering of experiment outputs.

The benchmark harness reproduces the paper's tables and figures as text:
tables as aligned columns, figure series as ``x -> y`` listings.  Keeping
the renderer here (rather than in each bench) makes the bench output
uniform and testable.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["format_table", "format_series", "format_histogram"]


def _stringify(cell: object, float_format: str) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float) or isinstance(cell, np.floating):
        if not np.isfinite(cell):
            return "-"
        return format(float(cell), float_format)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = ".3f",
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table.

    Floats are formatted with ``float_format``; NaN/inf render as ``-``.
    """
    str_rows: List[List[str]] = [
        [_stringify(cell, float_format) for cell in row] for row in rows
    ]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    float_format: str = ".3f",
) -> str:
    """Render one figure series as an ``x -> y`` listing."""
    if len(xs) != len(ys):
        raise ValidationError(f"{len(xs)} x values but {len(ys)} y values")
    rows = [(x, y) for x, y in zip(xs, ys)]
    return format_table(
        [x_label, y_label], rows, float_format=float_format, title=name
    )


def format_histogram(
    name: str,
    labels: Sequence[str],
    counts: Sequence[int],
    width: int = 40,
) -> str:
    """Render labelled counts as a text bar chart."""
    if len(labels) != len(counts):
        raise ValidationError(f"{len(labels)} labels but {len(counts)} counts")
    peak = max(counts) if counts else 0
    lines = [name]
    label_width = max((len(l) for l in labels), default=0)
    for label, count in zip(labels, counts):
        bar = "#" * (0 if peak == 0 else int(round(width * count / peak)))
        lines.append(f"{label.ljust(label_width)}  {str(count).rjust(5)}  {bar}")
    return "\n".join(lines)
