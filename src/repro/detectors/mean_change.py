"""Mean change (MC) detector -- paper Section IV-B.

Three parts, matching the paper's subsection structure:

1. the windowed Gaussian mean-change GLRT (:mod:`repro.signal.glrt`),
2. the MC indicator curve built with a sliding 30-day window
   (:func:`repro.signal.curves.mean_change_curve_by_time`),
3. MC suspiciousness: the stream is cut into segments at the curve's
   peaks; a segment ``j`` with mean ``B_j`` is suspicious when either

   - ``|B_j - B_avg| > threshold1`` (a very large mean change), or
   - ``|B_j - B_avg| > threshold2`` **and** the segment's raters are less
     trustworthy than average (``T_j / T_avg`` below a ratio threshold),

   with ``threshold2 < threshold1`` (Section IV-B.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.detectors.base import DetectorConfig, TimeInterval
from repro.signal.curves import Curve, mean_change_curve_by_time
from repro.signal.peaks import Peak, UShape, detect_u_shape, find_peaks
from repro.signal.segmentation import segment_bounds_from_peaks
from repro.types import RatingStream

__all__ = ["MeanChangeReport", "MeanChangeDetector"]

TrustLookup = Callable[[str], float]


@dataclass(frozen=True)
class MeanChangeReport:
    """MC detector output for one stream."""

    curve: Curve
    peaks: Tuple[Peak, ...]
    u_shape: Optional[UShape]
    suspicious_intervals: Tuple[TimeInterval, ...]

    @property
    def has_u_shape(self) -> bool:
        """Whether the curve shows the two-peak U-shape configuration."""
        return self.u_shape is not None


class MeanChangeDetector:
    """Builds the MC curve and derives MC-suspicious segments."""

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config if config is not None else DetectorConfig()

    # ------------------------------------------------------------------ #

    def curve(self, stream: RatingStream) -> Curve:
        """The MC indicator curve for ``stream`` (30-day windows)."""
        return mean_change_curve_by_time(
            stream.times, stream.values, self.config.mc_window_days
        )

    def peaks(self, curve: Curve) -> List[Peak]:
        """Significant peaks on the MC curve."""
        return find_peaks(
            curve,
            threshold=self.config.mc_peak_threshold,
            min_separation=self.config.peak_min_separation,
        )

    def suspicious_segments(
        self,
        stream: RatingStream,
        peaks: List[Peak],
        trust_lookup: Optional[TrustLookup] = None,
    ) -> List[TimeInterval]:
        """Apply the Section IV-B.3 segment rules.

        With fewer than two peaks nothing can be bracketed and no segment
        is marked.  ``trust_lookup`` maps rater ids to current trust; when
        omitted, every rater is treated as having the initial trust 0.5,
        which disables the trust-moderated second condition (the ratio is
        then always 1).
        """
        n = len(stream)
        if n == 0 or len(peaks) < 2:
            return []
        cfg = self.config
        overall_mean = float(stream.values.mean())
        bounds = segment_bounds_from_peaks(n, peaks)
        if trust_lookup is None:
            trust_lookup = lambda rater_id: 0.5  # noqa: E731 - local default
        # One trust lookup per *unique* rater, expanded back to a
        # per-rating vector; segments then reduce to slice means instead
        # of re-querying the lookup rating by rating.
        unique_ids, inverse = np.unique(
            np.asarray(stream.rater_ids), return_inverse=True
        )
        unique_trust = np.array(
            [trust_lookup(str(r)) for r in unique_ids], dtype=float
        )
        per_rating = unique_trust[inverse]
        segment_trust: List[float] = [
            float(per_rating[start:stop].mean()) if stop > start else 0.5
            for start, stop in bounds
        ]
        trust_avg = float(np.mean(segment_trust)) if segment_trust else 0.5
        intervals: List[TimeInterval] = []
        for (start, stop), t_j in zip(bounds, segment_trust):
            segment_mean = float(stream.values[start:stop].mean())
            shift = abs(segment_mean - overall_mean)
            condition1 = shift > cfg.mc_mean_threshold1
            trust_ratio = t_j / trust_avg if trust_avg > 0 else 1.0
            condition2 = (
                shift > cfg.mc_mean_threshold2
                and trust_ratio < cfg.mc_trust_ratio_threshold
            )
            if condition1 or condition2:
                intervals.append(
                    TimeInterval(
                        float(stream.times[start]), float(stream.times[stop - 1])
                    )
                )
        return intervals

    # ------------------------------------------------------------------ #

    def analyze(
        self,
        stream: RatingStream,
        trust_lookup: Optional[TrustLookup] = None,
    ) -> MeanChangeReport:
        """Full MC analysis of one stream."""
        curve = self.curve(stream)
        peaks = self.peaks(curve)
        u_shape = detect_u_shape(
            curve,
            threshold=self.config.mc_peak_threshold,
            min_separation=self.config.peak_min_separation,
        )
        intervals = self.suspicious_segments(stream, peaks, trust_lookup)
        return MeanChangeReport(
            curve=curve,
            peaks=tuple(peaks),
            u_shape=u_shape,
            suspicious_intervals=tuple(intervals),
        )
