"""Arrival rate change (ARC) detectors -- paper Section IV-C.

The base ARC detector applies the Poisson GLRT to the stream's daily
rating counts.  The H-ARC and L-ARC variants (Section IV-C.4) run the same
machinery over the counts of *high* ratings (``value > threshold_a``) and
*low* ratings (``value < threshold_b``) respectively -- collaborative
attacks inject ratings on one side of the fair mean, so the side-specific
arrival series shows the rate change much more sharply than the total.

Suspiciousness (Section IV-C.3): the daily-count series is segmented at
the ARC curve's peaks; a segment whose arrival rate *rose* relative to the
previous segment by more than a threshold is ARC-suspicious.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.detectors.base import DetectorConfig, TimeInterval
from repro.errors import ValidationError
from repro.signal.curves import Curve, arrival_rate_curve
from repro.signal.peaks import Peak, UShape, detect_u_shape, find_peaks
from repro.signal.segmentation import segment_bounds_from_peaks
from repro.types import RatingStream

__all__ = ["ArrivalRateReport", "ArrivalRateDetector"]

_VALID_KINDS = ("ARC", "H-ARC", "L-ARC")


@dataclass(frozen=True)
class ArrivalRateReport:
    """ARC-family detector output for one stream."""

    kind: str
    curve: Curve
    peaks: Tuple[Peak, ...]
    u_shape: Optional[UShape]
    alarm: bool
    suspicious_intervals: Tuple[TimeInterval, ...]

    @property
    def has_u_shape(self) -> bool:
        """Whether the curve shows the two-peak U-shape configuration."""
        return self.u_shape is not None


class ArrivalRateDetector:
    """ARC / H-ARC / L-ARC detector.

    ``kind`` selects which daily-count series is analyzed:

    - ``"ARC"``: all ratings;
    - ``"H-ARC"``: ratings with ``value > threshold_a`` (``0.5 m``);
    - ``"L-ARC"``: ratings with ``value < threshold_b`` (``0.5 m + 0.5``),
      ``m`` being the stream's mean rating value.
    """

    def __init__(self, kind: str = "ARC", config: Optional[DetectorConfig] = None) -> None:
        if kind not in _VALID_KINDS:
            raise ValidationError(f"kind must be one of {_VALID_KINDS}, got {kind!r}")
        self.kind = kind
        self.config = config if config is not None else DetectorConfig()

    # ------------------------------------------------------------------ #

    def _selected_times(self, stream: RatingStream) -> np.ndarray:
        """The rating times that belong to this detector's count series."""
        if self.kind == "ARC" or len(stream) == 0:
            return stream.times
        mean_value = float(stream.values.mean())
        if self.kind == "H-ARC":
            mask = stream.values > self.config.high_value_threshold(mean_value)
        else:  # L-ARC
            mask = stream.values < self.config.low_value_threshold(mean_value)
        return stream.times[mask]

    def daily_counts(
        self, stream: RatingStream, start_day: Optional[float] = None,
        end_day: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(days, counts)`` for the selected rating subset.

        The day grid always covers the *whole* stream span (even when the
        subset is empty on many days) so H-ARC and L-ARC curves stay
        aligned with each other and with the MC curve.
        """
        if len(stream) == 0:
            return np.array([], dtype=int), np.array([], dtype=int)
        lo = float(np.floor(stream.times[0] if start_day is None else start_day))
        hi = float(np.ceil(stream.times[-1] + 1e-9 if end_day is None else end_day))
        if hi <= lo:
            hi = lo + 1.0
        selected = self._selected_times(stream)
        days = np.arange(int(lo), int(hi), dtype=int)
        edges = np.arange(int(lo), int(hi) + 1, dtype=float)
        counts, _ = np.histogram(selected, bins=edges)
        return days, counts.astype(int)

    def curve(self, stream: RatingStream, half_width: Optional[int] = None) -> Curve:
        """The ARC indicator curve over the daily-count series.

        ``half_width`` defaults to half the configured (short) window.
        """
        days, counts = self.daily_counts(stream)
        if half_width is None:
            half_width = max(self.config.arc_window_days // 2, 1)
        return arrival_rate_curve(
            days.astype(float), counts.astype(float), half_width, kind=self.kind
        )

    def curves(self, stream: RatingStream) -> List[Curve]:
        """The indicator curves at every configured scale (short, long)."""
        out = [self.curve(stream)]
        if self.config.arc_long_window_days:
            out.append(
                self.curve(
                    stream, half_width=max(self.config.arc_long_window_days // 2, 1)
                )
            )
        return out

    @staticmethod
    def _merge_peaks(peak_lists: List[List[Peak]], min_separation: int) -> List[Peak]:
        """Union of per-scale peaks, suppressing near-duplicates by height."""
        merged: List[Peak] = []
        for peak in sorted(
            (p for peaks in peak_lists for p in peaks), key=lambda p: -p.height
        ):
            if all(abs(peak.index - q.index) >= min_separation for q in merged):
                merged.append(peak)
        merged.sort(key=lambda p: p.index)
        return merged

    def _is_rate_jump(self, low: float, high: float) -> bool:
        """Whether ``low -> high`` is a significant rate increase."""
        return (
            high > self.config.arc_segment_rate_ratio * low
            and high - low > self.config.arc_segment_min_increase
        )

    def _merge_similar_segments(self, bounds, rates):
        """Fuse adjacent segments whose rates are statistically similar.

        A long attack window often carries several indicator peaks from
        in-attack fluctuation; cutting at all of them fragments the
        elevated plateau into slices, and only the first slice would pass
        the previous-segment comparison.  Adjacent segments are therefore
        merged when neither direction of their rate difference qualifies
        as a significant jump.
        """
        merged_bounds = [list(bounds[0])]
        merged_counts = [rates[0] * (bounds[0][1] - bounds[0][0])]
        for (start, stop), rate in zip(bounds[1:], rates[1:]):
            current = merged_bounds[-1]
            current_rate = merged_counts[-1] / (current[1] - current[0])
            if self._is_rate_jump(current_rate, rate) or self._is_rate_jump(
                rate, current_rate
            ):
                merged_bounds.append([start, stop])
                merged_counts.append(rate * (stop - start))
            else:
                current[1] = stop
                merged_counts[-1] += rate * (stop - start)
        out_rates = [
            total / (stop - start)
            for (start, stop), total in zip(merged_bounds, merged_counts)
        ]
        return [tuple(b) for b in merged_bounds], out_rates

    def suspicious_segments(
        self, stream: RatingStream, peaks: List[Peak]
    ) -> List[TimeInterval]:
        """Section IV-C.3: segments whose arrival rate rose sharply.

        The daily-count series is cut at the curve peaks, similar-rate
        neighbours are merged back together, and a (merged) segment whose
        per-day rate exceeds the previous segment's by both the configured
        ratio and the configured absolute increase is marked.
        """
        days, counts = self.daily_counts(stream)
        if counts.size == 0 or len(peaks) == 0:
            return []
        bounds = segment_bounds_from_peaks(counts.size, peaks)
        if len(bounds) < 2:
            return []
        rates = [float(counts[start:stop].mean()) for start, stop in bounds]
        bounds, rates = self._merge_similar_segments(bounds, rates)
        intervals: List[TimeInterval] = []
        for i in range(1, len(bounds)):
            if self._is_rate_jump(rates[i - 1], rates[i]):
                start_idx, stop_idx = bounds[i]
                intervals.append(
                    TimeInterval(float(days[start_idx]), float(days[stop_idx - 1]) + 1.0)
                )
        return intervals

    # ------------------------------------------------------------------ #

    def analyze(self, stream: RatingStream) -> ArrivalRateReport:
        """Full ARC-family analysis of one stream.

        Peaks, the U-shape, and the alarm are evaluated at every configured
        window scale (the short paper window plus the optional long window
        for slow rate changes) and merged.  The *alarm* (used by Path 2 of
        the joint detector) fires when any curve exceeds the alarm
        threshold -- evidence of a rate anomaly -- regardless of whether a
        clean U-shape exists.
        """
        curves = self.curves(stream)
        peak_threshold = self.config.peak_threshold_for(self.kind)
        separation = self.config.peak_min_separation
        per_scale_peaks = [
            find_peaks(curve, threshold=peak_threshold, min_separation=separation)
            for curve in curves
        ]
        peaks = self._merge_peaks(per_scale_peaks, separation)
        u_shape = None
        for curve in curves:
            u_shape = detect_u_shape(
                curve, threshold=peak_threshold, min_separation=separation
            )
            if u_shape is not None:
                break
        alarm_threshold = self.config.alarm_threshold_for(self.kind)
        alarm = any(
            curve.values.size and float(curve.values.max()) > alarm_threshold
            for curve in curves
        )
        intervals = self.suspicious_segments(stream, peaks)
        return ArrivalRateReport(
            kind=self.kind,
            curve=curves[0],
            peaks=tuple(peaks),
            u_shape=u_shape,
            alarm=alarm,
            suspicious_intervals=tuple(intervals),
        )
