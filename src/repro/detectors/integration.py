"""Joint detection of suspicious ratings -- paper Section IV-F, Figure 1.

Single detectors false-alarm on natural variation (fair ratings drift in
mean and arrival rate), so the paper combines them along two parallel
paths:

**Path 1 (strong attacks).**  The MC curve shows a suspicious interval
(the U-shape bracketed by two peaks, or a trust-moderated suspicious
segment) *and* the H-ARC or L-ARC curve independently shows one too.
Where the two intervals overlap, the correspondingly high (``> a``)
or low (``< b``) ratings are marked suspicious.

**Path 2 (alarm-confirmed intervals).**  When an H-ARC (L-ARC) alarm is
raised -- the side-specific arrival rate is anomalous -- the ME (HC)
detector is consulted: ratings that are high (low) inside an
ME-suspicious (HC-suspicious) interval are marked.

Both paths always run; their marks are unioned (a product can be attacked
more than once, Section IV-F).

Every mark also records *provenance*: which path fired and which
sub-detectors contributed, as ``PROV_*`` bit flags per rating
(:mod:`repro.detectors.base`).  The mask travels on the
:class:`DetectionReport`, feeding per-decision attribution (the CLI's
``detect --explain``) without re-running detection.  Per-sub-detector
wall-clock timings are recorded into the active metrics registry under
``detector.<kind>.seconds``; when a collecting registry is active, each
verdict is additionally joined against the stream's ground-truth unfair
labels into a :mod:`repro.obs.quality` scorecard (``quality.*``
counters: per-detector confusion cells, detection latency, bias at
detection).

Implementation note: the paper issues the Path 2 alarm only when the ARC
curve "does not have such a U-shape"; we raise it whenever the curve
exceeds the alarm threshold, because the ME/HC confirmation step already
suppresses false positives and this keeps Path 2 effective when Path 1
misses (e.g. an MC curve flattened by a high-variance attack).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.detectors.arrival_rate import ArrivalRateDetector, ArrivalRateReport
from repro.detectors.base import (
    PROV_H_ARC,
    PROV_HC,
    PROV_L_ARC,
    PROV_MC,
    PROV_ME,
    PROV_PATH1,
    PROV_PATH2,
    DetectionReport,
    DetectorConfig,
    TimeInterval,
)
from repro.detectors.columns import StreamColumns, extract_columns
from repro.detectors.histogram import HistogramChangeDetector
from repro.detectors.mean_change import MeanChangeDetector, MeanChangeReport
from repro.detectors.model_error import ModelErrorDetector
from repro.obs import get_logger
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.spans import span
from repro.signal.ar import (
    normalized_errors_from_operands,
    sliding_ar_normalized_errors,
    sliding_ar_operands,
)
from repro.signal.curves import (
    Curve,
    histogram_change_curve_from_stats,
    model_error_curve_from_errors,
)
from repro.signal.rolling import sliding_vars, two_cluster_balance
from repro.types import RatingStream

__all__ = ["JointDetector"]

TrustLookup = Callable[[str], float]

logger = get_logger(__name__)


class JointDetector:
    """The complete suspicious-rating detection stage of the P-scheme.

    ``registry`` injects a metrics sink for this detector's telemetry;
    when ``None`` the globally active registry is used at call time.
    """

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else DetectorConfig()
        self._registry = registry
        self.mean_change = MeanChangeDetector(self.config)
        self.h_arc = ArrivalRateDetector("H-ARC", self.config)
        self.l_arc = ArrivalRateDetector("L-ARC", self.config)
        self.histogram = HistogramChangeDetector(self.config)
        self.model_error = ModelErrorDetector(self.config)

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics sink in effect (injected, else the global one)."""
        return self._registry if self._registry is not None else get_registry()

    # ------------------------------------------------------------------ #

    @staticmethod
    def _report_intervals(report) -> List[TimeInterval]:
        """All suspicious intervals a sub-detector produced.

        For MC and ARC reports this unions the U-shape interval (when
        present) with the segment-based suspicious intervals.
        """
        intervals: List[TimeInterval] = list(report.suspicious_intervals)
        u_shape = getattr(report, "u_shape", None)
        if u_shape is not None:
            intervals.append(TimeInterval.from_u_shape(u_shape))
        return intervals

    @staticmethod
    def _mark(
        mask: np.ndarray,
        provenance: np.ndarray,
        stream: RatingStream,
        interval: TimeInterval,
        value_mask: np.ndarray,
        flags: int,
    ) -> None:
        """Mark ratings inside ``interval`` that satisfy ``value_mask``,
        recording ``flags`` as their provenance."""
        hit = interval.mask(stream.times) & value_mask
        mask |= hit
        provenance[hit] |= flags

    def _path1(
        self,
        stream: RatingStream,
        mc_report: MeanChangeReport,
        harc_report: ArrivalRateReport,
        larc_report: ArrivalRateReport,
        high_mask: np.ndarray,
        low_mask: np.ndarray,
        mask: np.ndarray,
        provenance: np.ndarray,
    ) -> List[TimeInterval]:
        """Path 1: MC interval overlapping an H/L-ARC interval.

        The MC detector *confirms* that the rating level moved; the ARC
        interval *delimits* the attack (arrival anomalies bracket exactly
        the injected ratings, while the strongest MC peak pair may span
        only a slice of a long attack).  So on overlap, the whole ARC
        interval is marked.
        """
        fired: List[TimeInterval] = []
        mc_intervals = self._report_intervals(mc_report)
        for arc_report, value_mask, arc_flag in (
            (harc_report, high_mask, PROV_H_ARC),
            (larc_report, low_mask, PROV_L_ARC),
        ):
            for arc_interval in self._report_intervals(arc_report):
                confirmed = any(
                    mc_interval.intersect(arc_interval) is not None
                    for mc_interval in mc_intervals
                )
                if not confirmed:
                    continue
                self._mark(
                    mask, provenance, stream, arc_interval, value_mask,
                    PROV_PATH1 | PROV_MC | arc_flag,
                )
                fired.append(arc_interval)
        return fired

    def _path2(
        self,
        stream: RatingStream,
        harc_report: ArrivalRateReport,
        larc_report: ArrivalRateReport,
        me_intervals: List[TimeInterval],
        hc_intervals: List[TimeInterval],
        high_mask: np.ndarray,
        low_mask: np.ndarray,
        mask: np.ndarray,
        provenance: np.ndarray,
    ) -> List[TimeInterval]:
        """Path 2: ARC alarm confirmed by the ME or HC detector."""
        fired: List[TimeInterval] = []
        if harc_report.alarm:
            for interval in me_intervals:
                self._mark(
                    mask, provenance, stream, interval, high_mask,
                    PROV_PATH2 | PROV_H_ARC | PROV_ME,
                )
                fired.append(interval)
        if larc_report.alarm:
            for interval in hc_intervals:
                self._mark(
                    mask, provenance, stream, interval, low_mask,
                    PROV_PATH2 | PROV_L_ARC | PROV_HC,
                )
                fired.append(interval)
        return fired

    # ------------------------------------------------------------------ #

    def _timed(self, kind: str, analyze: Callable, *args):
        """Run one sub-detector under a span, recording wall-clock time.

        The span (``detector.<kind>``, nested under whatever stage is
        open) is what the sampling profiler attributes frames to, so a
        profile breaks each sub-detector's cost down per frame; the flat
        ``detector.<kind>.seconds`` histogram is kept for dashboards
        that predate the span tree.
        """
        registry = self.registry
        with span(f"detector.{kind}", registry):
            start = perf_counter()
            report = analyze(*args)
            elapsed = perf_counter() - start
        registry.observe(f"detector.{kind}.seconds", elapsed)
        registry.inc(f"detector.{kind}.calls")
        return report

    def analyze(
        self,
        stream: RatingStream,
        trust_lookup: Optional[TrustLookup] = None,
        precomputed: Optional[Dict[str, Curve]] = None,
    ) -> DetectionReport:
        """Run both detection paths over one product stream.

        ``trust_lookup`` (rater id -> current trust) feeds the
        trust-moderated MC segment rule; omit it on the first pass, before
        any trust has been established.

        ``precomputed`` optionally carries indicator curves (keyed by
        detector kind) that :meth:`analyze_batch` already built in its
        cross-stream pass; the matching sub-detectors then only threshold
        the curve instead of recomputing it.  Detection output is
        bit-identical either way.
        """
        n = len(stream)
        if n < self.config.min_ratings:
            self.registry.inc("detector.short_streams")
            return DetectionReport(
                product_id=stream.product_id,
                suspicious=np.zeros(n, dtype=bool),
            )
        mean_value = float(stream.values.mean())
        threshold_a = self.config.high_value_threshold(mean_value)
        threshold_b = self.config.low_value_threshold(mean_value)
        high_mask = stream.values > threshold_a
        low_mask = stream.values < threshold_b

        precomputed = precomputed or {}
        mc_report = self._timed("MC", self.mean_change.analyze, stream, trust_lookup)
        harc_report = self._timed("H-ARC", self.h_arc.analyze, stream)
        larc_report = self._timed("L-ARC", self.l_arc.analyze, stream)
        if "HC" in precomputed:
            hc_report = self._timed(
                "HC", self.histogram.report_from_curve, precomputed["HC"]
            )
        else:
            hc_report = self._timed("HC", self.histogram.analyze, stream)
        if "ME" in precomputed:
            me_report = self._timed(
                "ME", self.model_error.report_from_curve, precomputed["ME"]
            )
        else:
            me_report = self._timed("ME", self.model_error.analyze, stream)

        mask = np.zeros(n, dtype=bool)
        provenance = np.zeros(n, dtype=np.uint8)
        path1: List[TimeInterval] = []
        path2: List[TimeInterval] = []
        if self.config.enable_path1:
            path1 = self._path1(
                stream, mc_report, harc_report, larc_report,
                high_mask, low_mask, mask, provenance,
            )
        if self.config.enable_path2:
            path2 = self._path2(
                stream,
                harc_report,
                larc_report,
                list(me_report.suspicious_intervals),
                list(hc_report.suspicious_intervals),
                high_mask,
                low_mask,
                mask,
                provenance,
            )
        registry = self.registry
        registry.inc("detector.joint.calls")
        if mask.any():
            registry.inc("detector.joint.marked_ratings", int(mask.sum()))
            logger.debug(
                "product=%s marked=%d path1_intervals=%d path2_intervals=%d",
                stream.product_id, int(mask.sum()), len(path1), len(path2),
            )
        curves = {
            "MC": mc_report.curve,
            "H-ARC": harc_report.curve,
            "L-ARC": larc_report.curve,
            "HC": hc_report.curve,
            "ME": me_report.curve,
        }
        report = DetectionReport(
            product_id=stream.product_id,
            suspicious=mask,
            path1_intervals=tuple(path1),
            path2_intervals=tuple(path2),
            provenance=provenance,
            curves=curves,
            alarms={"H-ARC": harc_report.alarm, "L-ARC": larc_report.alarm},
        )
        if registry.enabled:
            # Join the verdict against the stream's ground-truth unfair
            # labels and fold the scorecard into the registry, so every
            # detection pass contributes to the quality.* namespace.
            # (Imported here: repro.obs.quality needs the provenance
            # flags from this package, so a top-level import would be
            # circular.)
            from repro.obs.quality import emit_scorecard, score_detection

            emit_scorecard(score_detection(stream, report), registry)
        return report

    # ------------------------------------------------------------------ #
    # Batched cross-stream fast path
    # ------------------------------------------------------------------ #

    def _batch_hc_curves(
        self, columns: StreamColumns, eligible: List[int]
    ) -> Dict[str, Curve]:
        """Precompute HC curves for every eligible stream in one pass.

        All streams' sliding windows are stacked into a single matrix and
        clustered with one :func:`two_cluster_balance` call -- each row is
        independent, so the stacked results match the per-stream ones
        bit-for-bit.
        """
        window = self.config.hc_window_ratings
        lengths = columns.lengths
        indices = [i for i in eligible if lengths[i] >= window]
        if not indices:
            return {}
        stacks = [
            sliding_window_view(columns.stream_values(i), window) for i in indices
        ]
        balances = two_cluster_balance(np.concatenate(stacks))
        curves: Dict[str, Curve] = {}
        cursor = 0
        for i, stack in zip(indices, stacks):
            count = stack.shape[0]
            curves[columns.product_ids[i]] = histogram_change_curve_from_stats(
                columns.stream_times(i), balances[cursor : cursor + count], window
            )
            cursor += count
        return curves

    def _batch_me_curves(
        self, columns: StreamColumns, eligible: List[int], registry: MetricsRegistry
    ) -> Dict[str, Curve]:
        """Precompute ME curves for every eligible stream in one pass.

        Every stream's AR design matrices and targets are concatenated and
        the covariance normal equations are solved as one stacked LAPACK
        batch.  A singular window anywhere in the batch falls back to the
        per-stream solver (which handles singularity with the
        pseudo-inverse), counted under ``detector.batch.fallbacks``.
        """
        window = self.config.me_window_ratings
        order = self.config.ar_order
        lengths = columns.lengths
        indices = [i for i in eligible if lengths[i] >= window]
        if not indices:
            return {}
        designs = []
        targets = []
        variances = []
        counts = []
        for i in indices:
            values = columns.stream_values(i)
            d, t = sliding_ar_operands(values, window, order)
            designs.append(d)
            targets.append(t)
            variances.append(sliding_vars(values, window))
            counts.append(d.shape[0])
        try:
            errors = normalized_errors_from_operands(
                np.concatenate(designs),
                np.concatenate(targets),
                np.concatenate(variances),
                order,
            )
            per_stream = np.split(errors, np.cumsum(counts)[:-1])
        except np.linalg.LinAlgError:
            registry.inc("detector.batch.fallbacks")
            per_stream = [
                sliding_ar_normalized_errors(columns.stream_values(i), window, order)
                for i in indices
            ]
        return {
            columns.product_ids[i]: model_error_curve_from_errors(
                columns.stream_times(i), stream_errors, window
            )
            for i, stream_errors in zip(indices, per_stream)
        }

    def analyze_batch(
        self,
        dataset,
        trust_lookup: Optional[TrustLookup] = None,
    ) -> Dict[str, DetectionReport]:
        """Run detection over every product of a dataset, batched.

        The dataset is first flattened into contiguous columnar arrays
        (:func:`~repro.detectors.columns.extract_columns`); the HC and ME
        indicator curves -- the two detectors that dominated the serial
        profile -- are then precomputed for *all* streams in single
        stacked numpy/LAPACK passes under the ``detector.batch`` span.
        The per-stream :meth:`analyze` calls that follow consume the
        precomputed curves, so every report (masks, provenance, curves,
        ``quality.*`` scorecards) is bit-identical to the per-stream path
        while the window-statistic work runs once per dataset instead of
        once per product.

        Batch telemetry: ``detector.batch.calls`` / ``.streams`` /
        ``.ratings`` counters, the ``detector.batch.seconds`` histogram
        for the precompute wall time, and ``detector.batch.fallbacks``
        when a singular AR batch drops to the per-stream solver.
        """
        registry = self.registry
        with span("detector.batch", registry):
            start = perf_counter()
            columns = extract_columns(dataset)
            eligible = [
                i
                for i, length in enumerate(columns.lengths)
                if length >= self.config.min_ratings
            ]
            precomputed: Dict[str, Dict[str, Curve]] = {}
            for product_id, curve in self._batch_hc_curves(
                columns, eligible
            ).items():
                precomputed.setdefault(product_id, {})["HC"] = curve
            for product_id, curve in self._batch_me_curves(
                columns, eligible, registry
            ).items():
                precomputed.setdefault(product_id, {})["ME"] = curve
            elapsed = perf_counter() - start
        registry.observe("detector.batch.seconds", elapsed)
        registry.inc("detector.batch.calls")
        registry.inc("detector.batch.streams", columns.num_streams)
        registry.inc("detector.batch.ratings", columns.total_ratings)
        return {
            product_id: self.analyze(
                dataset[product_id], trust_lookup, precomputed.get(product_id)
            )
            for product_id in dataset
        }

    def analyze_dataset(
        self,
        dataset,
        trust_lookup: Optional[TrustLookup] = None,
    ) -> Dict[str, DetectionReport]:
        """Run detection over every product in a dataset.

        Delegates to :meth:`analyze_batch`; kept as the stable name used
        throughout the experiment and marketplace layers.
        """
        return self.analyze_batch(dataset, trust_lookup)
