"""Histogram change (HC) detector -- paper Section IV-D.

Within a sliding window of 40 ratings, the rating values are split into
two clusters by single-linkage clustering and the balance

    HC(k) = min(n1 / n2, n2 / n1)

is plotted against the window's centre time.  Fair ratings form one
dominant mode, so one cluster dwarfs the other and HC stays near 0; a
block of collaborative unfair ratings far from the fair mode grows the
second cluster and pushes HC toward 1.  Windows where HC exceeds the
configured threshold are HC-suspicious.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.detectors.base import DetectorConfig, TimeInterval
from repro.signal.curves import Curve, histogram_change_curve
from repro.types import RatingStream

__all__ = ["HistogramChangeReport", "HistogramChangeDetector"]


@dataclass(frozen=True)
class HistogramChangeReport:
    """HC detector output for one stream."""

    curve: Curve
    suspicious_intervals: Tuple[TimeInterval, ...]

    @property
    def any_suspicious(self) -> bool:
        """Whether any window crossed the HC threshold."""
        return len(self.suspicious_intervals) > 0


def _mask_to_intervals(times: np.ndarray, mask: np.ndarray) -> List[TimeInterval]:
    """Contiguous True runs of ``mask`` converted to time intervals."""
    intervals: List[TimeInterval] = []
    start_idx: Optional[int] = None
    for i, flag in enumerate(mask):
        if flag and start_idx is None:
            start_idx = i
        elif not flag and start_idx is not None:
            intervals.append(TimeInterval(float(times[start_idx]), float(times[i - 1])))
            start_idx = None
    if start_idx is not None:
        intervals.append(TimeInterval(float(times[start_idx]), float(times[-1])))
    return intervals


class HistogramChangeDetector:
    """Builds the HC curve and extracts HC-suspicious intervals."""

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config if config is not None else DetectorConfig()

    def curve(self, stream: RatingStream) -> Curve:
        """The HC indicator curve (40-rating windows by default)."""
        return histogram_change_curve(
            stream.times, stream.values, self.config.hc_window_ratings
        )

    def report_from_curve(self, curve: Curve) -> HistogramChangeReport:
        """Build the HC report from an already-computed curve.

        This is the thresholding/interval half of :meth:`analyze`; the
        joint detector's batch path precomputes HC curves for a whole
        dataset in one clustering pass and feeds them through here.
        """
        if curve.is_empty:
            return HistogramChangeReport(curve=curve, suspicious_intervals=())
        mask = curve.values > self.config.hc_suspicious_threshold
        intervals = _mask_to_intervals(curve.times, mask)
        return HistogramChangeReport(
            curve=curve, suspicious_intervals=tuple(intervals)
        )

    def analyze(self, stream: RatingStream) -> HistogramChangeReport:
        """Full HC analysis of one stream."""
        return self.report_from_curve(self.curve(stream))
