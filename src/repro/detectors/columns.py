"""Columnar (struct-of-arrays) view of a rating dataset.

:class:`~repro.types.RatingStream` already stores each product's ratings
as numpy arrays, but a dataset is still a *collection* of per-product
objects: any pass over all products pays one Python round-trip per
stream.  :class:`StreamColumns` flattens a whole dataset into contiguous
concatenated columns -- value / time / unfair plus integer rater codes --
indexed by an offsets array, so cross-stream kernels (the joint
detector's batched HC clustering and AR solves) can slice every product
out of one allocation.

This is a scoped slice of the ROADMAP's columnar-store refactor (item 1):
the extraction is read-only and per-analysis, leaving the public
``RatingStream`` representation untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.types import RatingDataset

__all__ = ["StreamColumns", "extract_columns"]


@dataclass(frozen=True)
class StreamColumns:
    """Contiguous columnar arrays for all streams of one dataset.

    Attributes
    ----------
    product_ids:
        Products in dataset iteration order; stream ``i`` occupies rows
        ``offsets[i]:offsets[i + 1]`` of every column.
    times, values, unfair:
        Concatenated per-rating columns (float, float, bool).
    offsets:
        ``(num_streams + 1,)`` int array of stream boundaries.
    rater_codes:
        Per-rating integer codes into ``rater_vocab`` (sorted unique
        rater ids across the dataset), replacing the per-stream string
        tuples for numeric passes.
    rater_vocab:
        Code -> rater id decoding table.
    """

    product_ids: Tuple[str, ...]
    times: np.ndarray
    values: np.ndarray
    unfair: np.ndarray
    offsets: np.ndarray
    rater_codes: np.ndarray
    rater_vocab: Tuple[str, ...]

    @property
    def num_streams(self) -> int:
        """Number of product streams in the dataset."""
        return len(self.product_ids)

    @property
    def total_ratings(self) -> int:
        """Total ratings across all streams."""
        return int(self.times.size)

    @property
    def lengths(self) -> np.ndarray:
        """Per-stream rating counts, aligned with ``product_ids``."""
        return np.diff(self.offsets)

    def stream_slice(self, index: int) -> slice:
        """Row slice of stream ``index`` into every column."""
        return slice(int(self.offsets[index]), int(self.offsets[index + 1]))

    def stream_times(self, index: int) -> np.ndarray:
        """Time column of stream ``index`` (zero-copy view)."""
        return self.times[self.stream_slice(index)]

    def stream_values(self, index: int) -> np.ndarray:
        """Value column of stream ``index`` (zero-copy view)."""
        return self.values[self.stream_slice(index)]


def extract_columns(dataset: RatingDataset) -> StreamColumns:
    """Flatten ``dataset`` into one :class:`StreamColumns`.

    Streams appear in dataset iteration order (insertion order, which is
    what every detection pass iterates in), so downstream per-stream
    results can be zipped back against ``dataset`` directly.
    """
    product_ids = tuple(dataset)
    streams = [dataset[pid] for pid in product_ids]
    lengths = np.fromiter(
        (len(s) for s in streams), dtype=np.int64, count=len(streams)
    )
    offsets = np.zeros(len(streams) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    if total:
        times = np.concatenate([s.times for s in streams])
        values = np.concatenate([s.values for s in streams])
        unfair = np.concatenate([s.unfair for s in streams])
    else:
        times = np.empty(0, dtype=float)
        values = np.empty(0, dtype=float)
        unfair = np.empty(0, dtype=bool)
    vocab = sorted({r for s in streams for r in s.rater_ids})
    code_of: Dict[str, int] = {rater: code for code, rater in enumerate(vocab)}
    rater_codes = np.fromiter(
        (code_of[r] for s in streams for r in s.rater_ids),
        dtype=np.int64,
        count=total,
    )
    for column in (times, values, unfair, offsets, rater_codes):
        column.setflags(write=False)
    return StreamColumns(
        product_ids=product_ids,
        times=times,
        values=values,
        unfair=unfair,
        offsets=offsets,
        rater_codes=rater_codes,
        rater_vocab=tuple(vocab),
    )
