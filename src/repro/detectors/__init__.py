"""The paper's unfair-rating detectors and their integration (Section IV).

- :mod:`repro.detectors.base` -- shared configuration, time intervals, and
  the :class:`DetectionReport` produced by the joint detector.
- :mod:`repro.detectors.mean_change` -- MC detector (Section IV-B).
- :mod:`repro.detectors.arrival_rate` -- ARC / H-ARC / L-ARC detectors
  (Section IV-C).
- :mod:`repro.detectors.histogram` -- HC detector (Section IV-D).
- :mod:`repro.detectors.model_error` -- ME detector (Section IV-E).
- :mod:`repro.detectors.integration` -- the Figure 1 joint detector
  (Path 1 for strong attacks, Path 2 for alarm-confirmed intervals),
  including the batched ``analyze_batch`` fast path.
- :mod:`repro.detectors.columns` -- columnar (struct-of-arrays) dataset
  extraction feeding the batch path.
"""

from repro.detectors.arrival_rate import ArrivalRateDetector, ArrivalRateReport
from repro.detectors.base import (
    PROVENANCE_FLAGS,
    DetectionReport,
    DetectorConfig,
    TimeInterval,
    provenance_labels,
)
from repro.detectors.calibration import (
    CalibrationResult,
    NullStatistics,
    calibrate_thresholds,
)
from repro.detectors.columns import StreamColumns, extract_columns
from repro.detectors.histogram import HistogramChangeDetector
from repro.detectors.integration import JointDetector
from repro.detectors.mean_change import MeanChangeDetector, MeanChangeReport
from repro.detectors.model_error import ModelErrorDetector

__all__ = [
    "ArrivalRateDetector",
    "ArrivalRateReport",
    "CalibrationResult",
    "NullStatistics",
    "calibrate_thresholds",
    "DetectionReport",
    "DetectorConfig",
    "TimeInterval",
    "PROVENANCE_FLAGS",
    "provenance_labels",
    "StreamColumns",
    "extract_columns",
    "HistogramChangeDetector",
    "JointDetector",
    "MeanChangeDetector",
    "MeanChangeReport",
    "ModelErrorDetector",
]
