"""Signal model change (ME) detector -- paper Section IV-E.

The ratings inside a sliding window are fit onto an autoregressive model
with the covariance method.  Honest ratings are close to white noise, so
the prediction error stays high; collaborative unfair ratings introduce a
predictable "signal" and the model error drops.  Windows whose normalized
model error falls below the configured threshold form the ME-suspicious
intervals.

This detector is exactly the one used in the paper's predecessor work
(Yang et al., "Building trust in online rating systems through signal
modeling", ICDCS-TRM 2007); here it serves as one input of the joint
detector's Path 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.detectors.base import DetectorConfig, TimeInterval
from repro.detectors.histogram import _mask_to_intervals
from repro.signal.curves import Curve, model_error_curve
from repro.types import RatingStream

__all__ = ["ModelErrorReport", "ModelErrorDetector"]


@dataclass(frozen=True)
class ModelErrorReport:
    """ME detector output for one stream."""

    curve: Curve
    suspicious_intervals: Tuple[TimeInterval, ...]

    @property
    def any_suspicious(self) -> bool:
        """Whether any window dropped below the model-error threshold."""
        return len(self.suspicious_intervals) > 0


class ModelErrorDetector:
    """Builds the ME curve and extracts low-error (suspicious) intervals."""

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config if config is not None else DetectorConfig()

    def curve(self, stream: RatingStream) -> Curve:
        """The ME indicator curve (40-rating windows, AR(4) by default)."""
        return model_error_curve(
            stream.times,
            stream.values,
            self.config.me_window_ratings,
            order=self.config.ar_order,
        )

    def report_from_curve(self, curve: Curve) -> ModelErrorReport:
        """Build the ME report from an already-computed curve.

        The joint detector's batch path solves every stream's AR normal
        equations in one stacked pass and feeds the resulting curves
        through here, skipping the per-stream fit entirely.
        """
        if curve.is_empty:
            return ModelErrorReport(curve=curve, suspicious_intervals=())
        mask = curve.values < self.config.me_suspicious_threshold
        intervals = _mask_to_intervals(curve.times, mask)
        return ModelErrorReport(curve=curve, suspicious_intervals=tuple(intervals))

    def analyze(self, stream: RatingStream) -> ModelErrorReport:
        """Full ME analysis of one stream."""
        return self.report_from_curve(self.curve(stream))
