"""Automatic threshold calibration from fair-data samples.

The paper specifies the detector windows but not the detection thresholds;
those depend on the deployment's fair-traffic statistics (arrival volume,
weekly cycles, rating dispersion).  DESIGN.md §6 describes the calibration
this reproduction used; this module packages it as a reusable procedure:

1. run every indicator curve over a sample of (attack-free) rating
   streams,
2. collect the per-stream extreme statistic of each detector (maxima for
   MC/ARC/HC, minima for ME),
3. place each threshold at a chosen percentile of that null distribution,
   times a safety margin.

The result is a drop-in :class:`~repro.detectors.base.DetectorConfig` for
a new site, plus the measured null statistics for auditability.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.detectors.arrival_rate import ArrivalRateDetector
from repro.detectors.base import DetectorConfig
from repro.detectors.histogram import HistogramChangeDetector
from repro.detectors.mean_change import MeanChangeDetector
from repro.detectors.model_error import ModelErrorDetector
from repro.errors import EmptyDataError, ValidationError
from repro.types import RatingDataset

__all__ = ["NullStatistics", "CalibrationResult", "calibrate_thresholds"]


@dataclass(frozen=True)
class NullStatistics:
    """Per-detector extreme statistics measured on fair streams."""

    mc_maxima: Tuple[float, ...]
    harc_maxima: Tuple[float, ...]
    larc_maxima: Tuple[float, ...]
    hc_maxima: Tuple[float, ...]
    me_minima: Tuple[float, ...]

    def summary(self) -> Dict[str, Tuple[float, float, float]]:
        """``{detector: (median, p90, max)}`` of each null distribution."""
        out = {}
        for name, values in (
            ("MC", self.mc_maxima),
            ("H-ARC", self.harc_maxima),
            ("L-ARC", self.larc_maxima),
            ("HC", self.hc_maxima),
            ("ME(min)", self.me_minima),
        ):
            arr = np.asarray(values)
            out[name] = (
                float(np.median(arr)),
                float(np.percentile(arr, 90)),
                float(arr.max()),
            )
        return out


@dataclass(frozen=True)
class CalibrationResult:
    """A calibrated config plus the evidence it was derived from."""

    config: DetectorConfig
    null_statistics: NullStatistics
    percentile: float
    margin: float


def _collect_null_statistics(
    datasets: Iterable[RatingDataset], base: DetectorConfig
) -> NullStatistics:
    mc = MeanChangeDetector(base)
    harc = ArrivalRateDetector("H-ARC", base)
    larc = ArrivalRateDetector("L-ARC", base)
    hc = HistogramChangeDetector(base)
    me = ModelErrorDetector(base)
    mc_max: List[float] = []
    harc_max: List[float] = []
    larc_max: List[float] = []
    hc_max: List[float] = []
    me_min: List[float] = []
    n_streams = 0
    for dataset in datasets:
        for product_id in dataset:
            stream = dataset[product_id]
            if len(stream) < base.min_ratings:
                continue
            n_streams += 1
            mc_max.append(mc.curve(stream).max_value())
            harc_max.append(max(c.max_value() for c in harc.curves(stream)))
            larc_max.append(max(c.max_value() for c in larc.curves(stream)))
            hc_max.append(hc.curve(stream).max_value())
            me_curve = me.curve(stream)
            me_min.append(
                float(me_curve.values.min()) if len(me_curve) else 1.0
            )
    if n_streams == 0:
        raise EmptyDataError("no usable fair streams to calibrate from")
    return NullStatistics(
        mc_maxima=tuple(mc_max),
        harc_maxima=tuple(harc_max),
        larc_maxima=tuple(larc_max),
        hc_maxima=tuple(hc_max),
        me_minima=tuple(me_min),
    )


def calibrate_thresholds(
    fair_datasets: Iterable[RatingDataset],
    percentile: float = 95.0,
    margin: float = 1.05,
    base: DetectorConfig = DetectorConfig(),
) -> CalibrationResult:
    """Derive detection thresholds from attack-free rating data.

    ``percentile`` selects the operating point on each null distribution
    (95 tolerates one fair stream in twenty having a peak); ``margin``
    scales the resulting thresholds up as a safety factor.  Alarm
    thresholds are placed 25% above the peak thresholds, mirroring the
    hand calibration; the HC threshold is capped just below 1 (an exactly
    balanced split must stay detectable); the ME threshold sits *below*
    the fair minima (low model error is the suspicious direction).
    """
    if not 50.0 <= percentile <= 100.0:
        raise ValidationError(
            f"percentile must be in [50, 100], got {percentile}"
        )
    if margin <= 0:
        raise ValidationError(f"margin must be > 0, got {margin}")
    stats = _collect_null_statistics(fair_datasets, base)

    def level(values: Tuple[float, ...]) -> float:
        return float(np.percentile(np.asarray(values), percentile))

    mc_peak = margin * level(stats.mc_maxima)
    harc_peak = margin * level(stats.harc_maxima)
    larc_peak = margin * level(stats.larc_maxima)
    hc_threshold = min(margin * level(stats.hc_maxima), 0.98)
    # ME: suspicious when *below*; take the mirrored percentile of minima
    # and step down by the margin.
    me_threshold = float(
        np.percentile(np.asarray(stats.me_minima), 100.0 - percentile)
    ) / margin
    config = replace(
        base,
        mc_peak_threshold=mc_peak,
        harc_peak_threshold=harc_peak,
        harc_alarm_threshold=1.25 * harc_peak,
        larc_peak_threshold=larc_peak,
        larc_alarm_threshold=1.25 * larc_peak,
        hc_suspicious_threshold=hc_threshold,
        me_suspicious_threshold=me_threshold,
    )
    return CalibrationResult(
        config=config,
        null_statistics=stats,
        percentile=percentile,
        margin=margin,
    )
