"""Shared detector configuration and result types.

The numeric defaults follow the paper where it gives values (Section V-A:
MC window 30 days, ARC window 30 days, HC window 40 ratings, ME window 40
ratings, ``threshold_a = 0.5 m``, ``threshold_b = 0.5 m + 0.5``, initial
trust 0.5).  Thresholds the paper leaves unspecified (peak heights, alarm
levels, the MC segment thresholds, HC/ME cutoffs) were calibrated on
synthetic fair-only data so the false-alarm rate stays low while the
smoke-test attacks of Section V are caught; see
``tests/integration/test_detector_calibration.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.signal.curves import Curve
from repro.signal.peaks import UShape

__all__ = [
    "TimeInterval",
    "DetectorConfig",
    "DetectionReport",
    "PROV_PATH1",
    "PROV_PATH2",
    "PROV_MC",
    "PROV_H_ARC",
    "PROV_L_ARC",
    "PROV_HC",
    "PROV_ME",
    "PROVENANCE_FLAGS",
    "provenance_labels",
]


# --------------------------------------------------------------------- #
# Detection provenance
#
# The joint detector records, per rating, *why* it was marked: which
# Figure 1 path fired and which sub-detectors contributed.  Flags are
# bit-ored into a uint8 mask aligned with the stream; a rating is
# suspicious iff its provenance is nonzero.
# --------------------------------------------------------------------- #

PROV_PATH1 = 0x01  #: marked by Path 1 (MC interval ∩ ARC interval)
PROV_PATH2 = 0x02  #: marked by Path 2 (ARC alarm confirmed by ME/HC)
PROV_MC = 0x04  #: the mean-change detector contributed
PROV_H_ARC = 0x08  #: the high-side arrival-rate detector contributed
PROV_L_ARC = 0x10  #: the low-side arrival-rate detector contributed
PROV_HC = 0x20  #: the histogram-change detector contributed
PROV_ME = 0x40  #: the model-error detector contributed

#: Label -> bit, in display order (paths first, then detectors).
PROVENANCE_FLAGS = {
    "path1": PROV_PATH1,
    "path2": PROV_PATH2,
    "MC": PROV_MC,
    "H-ARC": PROV_H_ARC,
    "L-ARC": PROV_L_ARC,
    "HC": PROV_HC,
    "ME": PROV_ME,
}


def provenance_labels(code: int) -> Tuple[str, ...]:
    """Human-readable names of the flags set in one provenance code."""
    return tuple(
        label for label, bit in PROVENANCE_FLAGS.items() if code & bit
    )


@dataclass(frozen=True)
class TimeInterval:
    """A closed time interval ``[start, stop]`` in days."""

    start: float
    stop: float

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ValidationError(
                f"interval stop ({self.stop}) before start ({self.start})"
            )

    @property
    def duration(self) -> float:
        """Interval length in days."""
        return self.stop - self.start

    def contains(self, time: float) -> bool:
        """Whether ``time`` lies inside the interval (inclusive)."""
        return self.start <= time <= self.stop

    def intersect(self, other: "TimeInterval") -> Optional["TimeInterval"]:
        """Intersection with ``other``, or ``None`` when disjoint."""
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        if stop < start:
            return None
        return TimeInterval(start, stop)

    def mask(self, times: np.ndarray) -> np.ndarray:
        """Boolean mask of ``times`` falling inside the interval."""
        times = np.asarray(times, dtype=float)
        return (times >= self.start) & (times <= self.stop)

    @classmethod
    def from_u_shape(cls, u_shape: UShape) -> "TimeInterval":
        """The suspicious interval bracketed by a curve U-shape."""
        return cls(u_shape.start_time, u_shape.stop_time)


@dataclass(frozen=True)
class DetectorConfig:
    """All tunables of the P-scheme detection stage.

    Paper-specified values
    ----------------------
    mc_window_days, arc_window_days, hc_window_ratings, me_window_ratings:
        30 days, 30 days, 40 ratings, 40 ratings (Section V-A).
    high_value_factor / low_value_factor / low_value_offset:
        ``threshold_a = high_value_factor * m`` and
        ``threshold_b = low_value_factor * m + low_value_offset`` where
        ``m`` is the stream's mean rating value.

    Calibrated values
    -----------------
    mc_peak_threshold:
        Minimum MC statistic (energy units) for a peak to count.
    harc_peak_threshold / harc_alarm_threshold,
    larc_peak_threshold / larc_alarm_threshold:
        Minimum ARC statistic for a U-shape peak / for raising an alarm,
        per detector side.  The high side needs larger thresholds: almost
        every fair rating counts as "high" (``threshold_a ~= 2`` on a
        fair mean of 4), so the H-ARC series inherits the full natural
        arrival variation, while the low side is quiet unless attacked.
    arc_peak_threshold / arc_alarm_threshold:
        Thresholds for the plain (all-ratings) ARC detector, used when it
        is run standalone.
    hc_suspicious_threshold:
        HC values above this mark a balanced-bimodal (suspicious) window.
    me_suspicious_threshold:
        Normalized AR model errors below this mark a predictable
        (suspicious) window.
    mc_mean_threshold1 / mc_mean_threshold2 / mc_trust_ratio_threshold:
        The Section IV-B.3 segment rules: ``|B_j - B_avg| > threshold1``
        alone, or ``> threshold2`` with segment trust ratio
        ``T_j / T_avg`` below the trust ratio threshold.
    """

    # Paper-specified windows (Section V-A).
    mc_window_days: float = 30.0
    arc_window_days: int = 30
    # Second ARC scale: slow-but-sustained ("drip") rate changes are only
    # statistically significant over longer windows; the total-LLR curve
    # units make the same thresholds valid at both scales.  0 disables.
    arc_long_window_days: int = 60
    hc_window_ratings: int = 40
    me_window_ratings: int = 40
    ar_order: int = 4
    # Value thresholds for high/low rating classification.
    high_value_factor: float = 0.5
    low_value_factor: float = 0.5
    low_value_offset: float = 0.5
    # Calibrated detection thresholds (see the class docstring: set near
    # the 99th percentile of the fair-only statistic distributions).
    mc_peak_threshold: float = 8.0
    arc_peak_threshold: float = 4.0
    arc_alarm_threshold: float = 5.5
    harc_peak_threshold: float = 6.0
    harc_alarm_threshold: float = 8.4
    larc_peak_threshold: float = 4.2
    larc_alarm_threshold: float = 5.2
    hc_suspicious_threshold: float = 0.92
    me_suspicious_threshold: float = 0.40
    # Section IV-C.3 segment rule: a segment is ARC-suspicious when its
    # per-day rate exceeds the previous segment's by the given ratio AND
    # by the given absolute amount (both, so near-zero baselines do not
    # trivially satisfy the ratio).
    arc_segment_rate_ratio: float = 1.8
    arc_segment_min_increase: float = 0.3
    # MC segment suspiciousness (Section IV-B.3).
    mc_mean_threshold1: float = 1.0
    mc_mean_threshold2: float = 0.4
    mc_trust_ratio_threshold: float = 0.9
    # Peak bookkeeping.
    peak_min_separation: int = 5
    # Streams shorter than this are left undetected (not enough evidence).
    min_ratings: int = 10
    # Ablation switches: disable one of the Figure 1 detection paths to
    # measure its contribution (see the ablation bench).
    enable_path1: bool = True
    enable_path2: bool = True

    def __post_init__(self) -> None:
        if self.mc_window_days <= 0:
            raise ValidationError("mc_window_days must be > 0")
        if self.arc_window_days < 2:
            raise ValidationError("arc_window_days must be >= 2")
        if self.hc_window_ratings < 2:
            raise ValidationError("hc_window_ratings must be >= 2")
        if self.me_window_ratings < 2 * self.ar_order:
            raise ValidationError(
                "me_window_ratings must be >= 2 * ar_order for the "
                "covariance-method AR fit"
            )
        if self.mc_mean_threshold2 > self.mc_mean_threshold1:
            raise ValidationError(
                "mc_mean_threshold2 must not exceed mc_mean_threshold1 "
                "(the paper requires threshold2 < threshold1)"
            )

    # ------------------------------------------------------------------ #

    def peak_threshold_for(self, kind: str) -> float:
        """The ARC-family peak threshold for ``kind``."""
        return {
            "ARC": self.arc_peak_threshold,
            "H-ARC": self.harc_peak_threshold,
            "L-ARC": self.larc_peak_threshold,
        }[kind]

    def alarm_threshold_for(self, kind: str) -> float:
        """The ARC-family alarm threshold for ``kind``."""
        return {
            "ARC": self.arc_alarm_threshold,
            "H-ARC": self.harc_alarm_threshold,
            "L-ARC": self.larc_alarm_threshold,
        }[kind]

    def high_value_threshold(self, mean_value: float) -> float:
        """``threshold_a``: ratings above this count as "high"."""
        return self.high_value_factor * mean_value

    def low_value_threshold(self, mean_value: float) -> float:
        """``threshold_b``: ratings below this count as "low"."""
        return self.low_value_factor * mean_value + self.low_value_offset


@dataclass(frozen=True)
class DetectionReport:
    """Everything the joint detector concluded about one product stream.

    Attributes
    ----------
    product_id:
        The analyzed product.
    suspicious:
        Boolean mask aligned with the stream: ``True`` marks ratings the
        detector flagged.
    path1_intervals / path2_intervals:
        Suspicious time intervals discovered by each detection path of
        Figure 1.
    provenance:
        Per-rating uint8 bitmask of ``PROV_*`` flags recording which path
        and which detectors marked the rating.  Nonzero exactly where
        ``suspicious`` is ``True``; decode with :func:`provenance_labels`.
    curves:
        Indicator curves by kind (``"MC"``, ``"H-ARC"``, ``"L-ARC"``,
        ``"HC"``, ``"ME"``) for introspection and plotting.
    alarms:
        Which ARC alarms fired (``{"H-ARC": bool, "L-ARC": bool}``).
    """

    product_id: str
    suspicious: np.ndarray
    path1_intervals: Tuple[TimeInterval, ...] = ()
    path2_intervals: Tuple[TimeInterval, ...] = ()
    provenance: Optional[np.ndarray] = None
    curves: Mapping[str, Curve] = field(default_factory=dict)
    alarms: Mapping[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.suspicious.setflags(write=False)
        if self.provenance is None:
            object.__setattr__(
                self, "provenance",
                np.zeros(self.suspicious.shape, dtype=np.uint8),
            )
        self.provenance.setflags(write=False)

    @property
    def num_suspicious(self) -> int:
        """Count of ratings marked suspicious."""
        return int(self.suspicious.sum())

    @property
    def any_detection(self) -> bool:
        """Whether anything at all was flagged."""
        return bool(self.suspicious.any())

    def intervals(self) -> List[TimeInterval]:
        """All suspicious intervals (both paths)."""
        return list(self.path1_intervals) + list(self.path2_intervals)

    def provenance_of(self, index: int) -> Tuple[str, ...]:
        """Decoded provenance labels for the rating at ``index``."""
        return provenance_labels(int(self.provenance[index]))

    @property
    def provenance_consistent(self) -> bool:
        """Whether provenance is nonzero exactly where suspicious."""
        return bool(np.array_equal(self.provenance != 0, self.suspicious))
