"""Core data model: rating records, per-product rating streams, datasets.

The whole library works over three small types:

- :class:`Rating` -- one rating event: *who* rated *what*, *when*, with what
  *value*, plus a ground-truth ``unfair`` flag (known in simulations, which
  is exactly the point of the paper's rating challenge: collect unfair
  ratings *with* ground truth).
- :class:`RatingStream` -- all ratings for a single product, sorted by time,
  stored columnar (numpy arrays) because the detectors are windowed
  numerical algorithms.
- :class:`RatingDataset` -- a mapping of product id to stream, with helpers
  to merge attack ratings into fair ratings.

Times are measured in **days** (floats) since the start of the observation
period; the paper's challenge ran for roughly 82 days and computes its MP
metric over 30-day months.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EmptyDataError, ValidationError

__all__ = [
    "RatingScale",
    "DEFAULT_SCALE",
    "Rating",
    "RatingStream",
    "RatingDataset",
]


@dataclass(frozen=True)
class RatingScale:
    """The closed interval of admissible rating values.

    The paper's data uses a 0..5 scale with fair means around 4; other
    deployments (e.g. 1..5 stars) are supported by constructing a different
    scale and passing it where relevant.
    """

    minimum: float = 0.0
    maximum: float = 5.0

    def __post_init__(self) -> None:
        if not self.minimum < self.maximum:
            raise ValidationError(
                f"rating scale requires minimum < maximum, got [{self.minimum}, {self.maximum}]"
            )

    @property
    def width(self) -> float:
        """Length of the scale interval."""
        return self.maximum - self.minimum

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies on the scale (inclusive)."""
        return self.minimum <= value <= self.maximum

    def clip(self, values: np.ndarray) -> np.ndarray:
        """Clip an array of values onto the scale."""
        return np.clip(np.asarray(values, dtype=float), self.minimum, self.maximum)


DEFAULT_SCALE = RatingScale(0.0, 5.0)


@dataclass(frozen=True, order=True)
class Rating:
    """A single rating event.

    Ordering is by ``(time, rater_id, product_id, value)`` so sorting a list
    of ratings yields a deterministic chronological order.
    """

    time: float
    rater_id: str = field(compare=True)
    product_id: str = field(compare=True)
    value: float = field(compare=True)
    unfair: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if not np.isfinite(self.time):
            raise ValidationError(f"rating time must be finite, got {self.time!r}")
        if not np.isfinite(self.value):
            raise ValidationError(f"rating value must be finite, got {self.value!r}")


class RatingStream:
    """All ratings for one product, sorted by time, stored columnar.

    Attributes
    ----------
    product_id:
        The rated product.
    times:
        Float array of rating times in days, non-decreasing.
    values:
        Float array of rating values, same length.
    rater_ids:
        Tuple of rater id strings, same length.
    unfair:
        Boolean ground-truth array, same length.  ``True`` marks ratings
        injected by an attack (known only in simulation).
    """

    __slots__ = ("product_id", "times", "values", "rater_ids", "unfair")

    def __init__(
        self,
        product_id: str,
        times: Sequence[float],
        values: Sequence[float],
        rater_ids: Sequence[str],
        unfair: Optional[Sequence[bool]] = None,
    ) -> None:
        times_arr = np.asarray(times, dtype=float)
        values_arr = np.asarray(values, dtype=float)
        raters = tuple(str(r) for r in rater_ids)
        if unfair is None:
            unfair_arr = np.zeros(times_arr.size, dtype=bool)
        else:
            unfair_arr = np.asarray(unfair, dtype=bool)
        n = times_arr.size
        if not (values_arr.size == n and len(raters) == n and unfair_arr.size == n):
            raise ValidationError(
                "times, values, rater_ids and unfair must have equal lengths; got "
                f"{times_arr.size}, {values_arr.size}, {len(raters)}, {unfair_arr.size}"
            )
        if n and not np.all(np.isfinite(times_arr)):
            raise ValidationError("rating times must be finite")
        if n and not np.all(np.isfinite(values_arr)):
            raise ValidationError("rating values must be finite")
        order = np.argsort(times_arr, kind="stable")
        self.product_id = str(product_id)
        self.times = times_arr[order]
        self.values = values_arr[order]
        self.rater_ids = tuple(raters[i] for i in order)
        self.unfair = unfair_arr[order]
        # Freeze the arrays: streams are treated as immutable snapshots.
        self.times.setflags(write=False)
        self.values.setflags(write=False)
        self.unfair.setflags(write=False)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_ratings(cls, product_id: str, ratings: Iterable[Rating]) -> "RatingStream":
        """Build a stream from :class:`Rating` records for one product.

        Ratings whose ``product_id`` differs from ``product_id`` raise
        :class:`~repro.errors.ValidationError` -- mixing products in one
        stream is always a bug.
        """
        times: List[float] = []
        values: List[float] = []
        raters: List[str] = []
        unfair: List[bool] = []
        for rating in ratings:
            if rating.product_id != product_id:
                raise ValidationError(
                    f"rating for product {rating.product_id!r} cannot join "
                    f"stream of product {product_id!r}"
                )
            times.append(rating.time)
            values.append(rating.value)
            raters.append(rating.rater_id)
            unfair.append(rating.unfair)
        return cls(product_id, times, values, raters, unfair)

    @classmethod
    def empty(cls, product_id: str) -> "RatingStream":
        """An empty stream for ``product_id``."""
        return cls(product_id, [], [], [], [])

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return int(self.times.size)

    def __iter__(self) -> Iterator[Rating]:
        for i in range(len(self)):
            yield self.rating_at(i)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RatingStream(product_id={self.product_id!r}, n={len(self)}, "
            f"unfair={int(self.unfair.sum())})"
        )

    def rating_at(self, index: int) -> Rating:
        """The :class:`Rating` record at positional ``index``."""
        return Rating(
            time=float(self.times[index]),
            rater_id=self.rater_ids[index],
            product_id=self.product_id,
            value=float(self.values[index]),
            unfair=bool(self.unfair[index]),
        )

    # ------------------------------------------------------------------ #
    # Views and derived data
    # ------------------------------------------------------------------ #

    def subset(self, mask: np.ndarray) -> "RatingStream":
        """A new stream containing only the rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.size != len(self):
            raise ValidationError(
                f"mask length {mask.size} does not match stream length {len(self)}"
            )
        raters = tuple(r for r, keep in zip(self.rater_ids, mask) if keep)
        return RatingStream(
            self.product_id, self.times[mask], self.values[mask], raters, self.unfair[mask]
        )

    def fair_only(self) -> "RatingStream":
        """The sub-stream of ground-truth fair ratings."""
        return self.subset(~self.unfair)

    def unfair_only(self) -> "RatingStream":
        """The sub-stream of ground-truth unfair ratings."""
        return self.subset(self.unfair)

    def between(self, start: float, stop: float) -> "RatingStream":
        """Ratings with ``start <= time < stop``."""
        mask = (self.times >= start) & (self.times < stop)
        return self.subset(mask)

    def merge(self, other: "RatingStream") -> "RatingStream":
        """A new stream with both streams' ratings, time-sorted.

        This is how attack ratings are injected into fair data.
        """
        if other.product_id != self.product_id:
            raise ValidationError(
                f"cannot merge stream for {other.product_id!r} into {self.product_id!r}"
            )
        return RatingStream(
            self.product_id,
            np.concatenate([self.times, other.times]),
            np.concatenate([self.values, other.values]),
            self.rater_ids + other.rater_ids,
            np.concatenate([self.unfair, other.unfair]),
        )

    def time_span(self) -> Tuple[float, float]:
        """``(first, last)`` rating times.  Raises on an empty stream."""
        if len(self) == 0:
            raise EmptyDataError(f"stream for {self.product_id!r} is empty")
        return float(self.times[0]), float(self.times[-1])

    def daily_counts(
        self, start_day: Optional[float] = None, end_day: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Number of ratings received per whole day.

        Returns ``(days, counts)`` where ``days`` are integer day indices
        covering ``[floor(start), ceil(end))`` and ``counts[i]`` is the
        number of ratings with ``days[i] <= time < days[i] + 1``.  This is
        the ``y(n)`` series consumed by the arrival-rate change detector.
        """
        if len(self) == 0:
            return np.array([], dtype=int), np.array([], dtype=int)
        lo = float(np.floor(self.times[0] if start_day is None else start_day))
        hi = float(np.ceil(self.times[-1] + 1e-9 if end_day is None else end_day))
        if hi <= lo:
            hi = lo + 1.0
        days = np.arange(int(lo), int(hi), dtype=int)
        edges = np.arange(int(lo), int(hi) + 1, dtype=float)
        counts, _ = np.histogram(self.times, bins=edges)
        return days, counts.astype(int)

    def mean_value(self) -> float:
        """Arithmetic mean of the rating values.  Raises on empty streams."""
        if len(self) == 0:
            raise EmptyDataError(f"stream for {self.product_id!r} is empty")
        return float(self.values.mean())


class RatingDataset:
    """A collection of per-product rating streams.

    The dataset is the unit the challenge, the attack generator, and the
    aggregation schemes operate on.  It behaves like a read-only mapping
    ``product_id -> RatingStream``.
    """

    __slots__ = ("_streams",)

    def __init__(self, streams: Iterable[RatingStream]) -> None:
        mapping: Dict[str, RatingStream] = {}
        for stream in streams:
            if stream.product_id in mapping:
                raise ValidationError(
                    f"duplicate stream for product {stream.product_id!r}; "
                    "merge the streams before building the dataset"
                )
            mapping[stream.product_id] = stream
        self._streams = mapping

    # Mapping-style protocol ------------------------------------------- #

    def __getitem__(self, product_id: str) -> RatingStream:
        return self._streams[product_id]

    def __contains__(self, product_id: str) -> bool:
        return product_id in self._streams

    def __iter__(self) -> Iterator[str]:
        return iter(self._streams)

    def __len__(self) -> int:
        return len(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = sum(len(s) for s in self._streams.values())
        return f"RatingDataset(products={len(self)}, ratings={total})"

    @property
    def product_ids(self) -> Tuple[str, ...]:
        """Product ids in insertion order."""
        return tuple(self._streams)

    def streams(self) -> Tuple[RatingStream, ...]:
        """All streams in insertion order."""
        return tuple(self._streams.values())

    def total_ratings(self) -> int:
        """Total rating count across all products."""
        return sum(len(s) for s in self._streams.values())

    # Derived datasets -------------------------------------------------- #

    def merge(self, extra: Mapping[str, RatingStream]) -> "RatingDataset":
        """A new dataset with ``extra`` streams merged product-wise.

        Products present only in ``extra`` are added; products present in
        both are merged.  The receiver is unchanged.
        """
        merged: List[RatingStream] = []
        for product_id, stream in self._streams.items():
            if product_id in extra:
                merged.append(stream.merge(extra[product_id]))
            else:
                merged.append(stream)
        for product_id, stream in extra.items():
            if product_id not in self._streams:
                merged.append(stream)
        return RatingDataset(merged)

    def fair_only(self) -> "RatingDataset":
        """Dataset with all ground-truth unfair ratings removed."""
        return RatingDataset([s.fair_only() for s in self._streams.values()])

    def map_streams(self, func) -> "RatingDataset":
        """Dataset built by applying ``func`` to each stream."""
        return RatingDataset([func(s) for s in self._streams.values()])

    def rater_ids(self) -> Tuple[str, ...]:
        """Sorted unique rater ids across all products."""
        seen = set()
        for stream in self._streams.values():
            seen.update(stream.rater_ids)
        return tuple(sorted(seen))
