"""Beta-function trust primitives (Jøsang & Ismail's beta reputation).

Trust in a rater is derived from evidence counts: ``S`` "good" events and
``F`` "bad" events map to the expected value of a Beta(S+1, F+1)
distribution:

    trust = (S + 1) / (S + F + 2)

With no evidence the trust is 0.5 -- exactly the initial trust value the
paper assigns to all raters.  In the P-scheme, a good event is a rating
that survives the suspicious-rating detectors, a bad event is a rating
marked suspicious (Procedure 1).  The BF-scheme uses the same mapping with
"removed by the majority-rule filter" as the bad event.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["BetaEvidence", "beta_trust_value"]


def beta_trust_value(successes: float, failures: float) -> float:
    """The beta-expected trust ``(S + 1) / (S + F + 2)``.

    Accepts fractional evidence (some schemes weight evidence); negative
    evidence is invalid.
    """
    if successes < 0 or failures < 0:
        raise ValidationError(
            f"evidence counts must be >= 0, got S={successes}, F={failures}"
        )
    return (successes + 1.0) / (successes + failures + 2.0)


@dataclass
class BetaEvidence:
    """Mutable evidence accumulator for one rater.

    Attributes
    ----------
    successes:
        Count ``S`` of good events (ratings not marked suspicious).
    failures:
        Count ``F`` of bad events (ratings marked suspicious / filtered).
    """

    successes: float = 0.0
    failures: float = 0.0

    def __post_init__(self) -> None:
        if self.successes < 0 or self.failures < 0:
            raise ValidationError(
                f"evidence counts must be >= 0, got S={self.successes}, "
                f"F={self.failures}"
            )

    @property
    def trust(self) -> float:
        """Current beta trust value."""
        return beta_trust_value(self.successes, self.failures)

    @property
    def total(self) -> float:
        """Total evidence observed."""
        return self.successes + self.failures

    def record(self, good: float, bad: float) -> None:
        """Accumulate ``good`` successes and ``bad`` failures."""
        if good < 0 or bad < 0:
            raise ValidationError(
                f"evidence increments must be >= 0, got good={good}, bad={bad}"
            )
        self.successes += good
        self.failures += bad

    def copy(self) -> "BetaEvidence":
        """An independent copy of the accumulator."""
        return BetaEvidence(self.successes, self.failures)
