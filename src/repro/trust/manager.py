"""The trust manager of the P-scheme (paper Procedure 1).

At a sequence of update epochs ``t_hat(1) < t_hat(2) < ...`` the manager
looks at every rating any rater provided (across **all** products) since
the previous epoch, counts how many of those ratings the detectors marked
suspicious, and folds the counts into each rater's beta evidence:

    F_i += f_i                 (suspicious ratings this epoch)
    S_i += n_i - f_i           (clean ratings this epoch)
    T_i  = (S_i + 1) / (S_i + F_i + 2)

Unknown raters have trust 0.5 (no evidence), matching the paper's initial
trust value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.obs.registry import MetricsRegistry, get_registry
from repro.trust.beta import BetaEvidence
from repro.types import RatingDataset

__all__ = ["TrustSnapshot", "TrustManager"]


@dataclass(frozen=True)
class TrustSnapshot:
    """Per-rater trust as of one epoch."""

    epoch_time: float
    trust: Mapping[str, float]

    def value(self, rater_id: str, default: float = 0.5) -> float:
        """Trust of ``rater_id`` at this epoch (``default`` if unseen)."""
        return self.trust.get(rater_id, default)


class TrustManager:
    """Implements Procedure 1 over a dataset plus suspicious-rating marks.

    Usage::

        manager = TrustManager()
        snapshots = manager.run(dataset, marks, epoch_times)
        trust_at_end = snapshots[-1]

    ``marks`` maps each product id to a boolean array aligned with that
    product's stream: ``True`` where the joint detector marked the rating
    suspicious.

    ``forgetting_factor`` enables the standard beta-reputation fading
    extension (Jøsang-Ismail): before each epoch's counts are folded in,
    the accumulated evidence is multiplied by the factor, so old behaviour
    matters exponentially less than recent behaviour.  1.0 (the default,
    and the paper's Procedure 1) never forgets; values below 1 let both
    honest raters recover from false alarms and attackers "redeem"
    themselves -- the trade-off the fading literature studies.
    """

    def __init__(
        self,
        initial_trust: float = 0.5,
        forgetting_factor: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 0.0 < initial_trust < 1.0:
            raise ValidationError(
                f"initial_trust must be in (0, 1), got {initial_trust}"
            )
        if not 0.0 < forgetting_factor <= 1.0:
            raise ValidationError(
                f"forgetting_factor must be in (0, 1], got {forgetting_factor}"
            )
        self.initial_trust = initial_trust
        self.forgetting_factor = forgetting_factor
        self._registry = registry
        self._evidence: Dict[str, BetaEvidence] = {}

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics sink in effect (injected, else the global one)."""
        return self._registry if self._registry is not None else get_registry()

    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Drop all accumulated evidence."""
        self._evidence.clear()

    def trust_of(self, rater_id: str) -> float:
        """Current trust for ``rater_id`` (initial trust when unseen)."""
        evidence = self._evidence.get(rater_id)
        if evidence is None:
            return self.initial_trust
        return evidence.trust

    def record_epoch(self, counts: Mapping[str, Tuple[int, int]]) -> None:
        """Fold one epoch's ``{rater: (n_i, f_i)}`` counts into evidence.

        ``n_i`` is the number of ratings rater ``i`` provided during the
        epoch and ``f_i`` how many of those were marked suspicious.  With
        a forgetting factor below 1, *all* raters' accumulated evidence is
        faded first (a rater silent this epoch still fades).
        """
        if self.forgetting_factor < 1.0:
            for evidence in self._evidence.values():
                evidence.successes *= self.forgetting_factor
                evidence.failures *= self.forgetting_factor
        for rater_id, (n_i, f_i) in counts.items():
            if f_i > n_i:
                raise ValidationError(
                    f"rater {rater_id!r}: suspicious count {f_i} exceeds "
                    f"rating count {n_i}"
                )
            evidence = self._evidence.setdefault(rater_id, BetaEvidence())
            evidence.record(good=n_i - f_i, bad=f_i)

    def snapshot(self, epoch_time: float) -> TrustSnapshot:
        """Freeze the current per-rater trust values."""
        return TrustSnapshot(
            epoch_time=epoch_time,
            trust={rid: ev.trust for rid, ev in self._evidence.items()},
        )

    # ------------------------------------------------------------------ #

    def run(
        self,
        dataset: RatingDataset,
        marks: Mapping[str, np.ndarray],
        epoch_times: Sequence[float],
    ) -> List[TrustSnapshot]:
        """Execute Procedure 1 over ``dataset`` and return epoch snapshots.

        ``epoch_times`` must be strictly increasing; epoch ``k`` covers
        ratings with ``t_hat(k-1) <= time < t_hat(k)`` (the first epoch
        covers everything before ``t_hat(1)``).  Returns one snapshot per
        epoch, taken *after* that epoch's update.
        """
        epoch_times = list(epoch_times)
        if any(b <= a for a, b in zip(epoch_times, epoch_times[1:])):
            raise ValidationError("epoch_times must be strictly increasing")
        self.reset()
        snapshots: List[TrustSnapshot] = []
        previous = -np.inf
        for epoch_time in epoch_times:
            counts: Dict[str, List[int]] = {}
            for product_id in dataset:
                stream = dataset[product_id]
                mask = np.asarray(marks.get(product_id, np.zeros(len(stream), bool)))
                if mask.size != len(stream):
                    raise ValidationError(
                        f"marks for {product_id!r} have length {mask.size}, "
                        f"stream has {len(stream)}"
                    )
                in_epoch = (stream.times >= previous) & (stream.times < epoch_time)
                for idx in np.nonzero(in_epoch)[0]:
                    entry = counts.setdefault(stream.rater_ids[idx], [0, 0])
                    entry[0] += 1
                    if mask[idx]:
                        entry[1] += 1
            self.record_epoch({rid: (n, f) for rid, (n, f) in counts.items()})
            snapshots.append(self.snapshot(epoch_time))
            previous = epoch_time
        registry = self.registry
        if registry.enabled:
            # Procedure 1 telemetry: how many epochs ran, how many raters
            # hold evidence, and where the final trust mass sits.
            registry.inc("trust.epochs", len(epoch_times))
            registry.inc("trust.runs")
            registry.set_gauge("trust.raters", float(len(self._evidence)))
            if snapshots:
                for value in snapshots[-1].trust.values():
                    registry.observe("trust.value", value)
        return snapshots
