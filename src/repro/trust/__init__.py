"""Trust substrate: beta-function trust and the paper's trust manager.

- :mod:`repro.trust.beta` -- the beta reputation primitives of Jøsang and
  Ismail: evidence counts ``(S, F)`` mapping to a trust value
  ``(S + 1) / (S + F + 2)``.
- :mod:`repro.trust.manager` -- Procedure 1: the trust manager that turns
  per-epoch suspicious-rating counts into per-rater trust trajectories.
"""

from repro.trust.beta import BetaEvidence, beta_trust_value
from repro.trust.manager import TrustManager, TrustSnapshot

__all__ = ["BetaEvidence", "beta_trust_value", "TrustManager", "TrustSnapshot"]
