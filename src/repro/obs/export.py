"""Exporters: registry -> JSON file, registry -> human-readable tables."""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.obs.registry import MetricsRegistry

__all__ = ["registry_to_dict", "write_json", "format_metrics"]


def registry_to_dict(registry: MetricsRegistry) -> Dict[str, object]:
    """A JSON-serializable dump of everything the registry collected."""
    payload = registry.snapshot()
    payload["spans"] = [
        {
            "path": record.path,
            "depth": record.depth,
            "seconds": record.duration,
            **({"annotations": dict(record.annotations)}
               if record.annotations else {}),
        }
        for record in registry.spans
    ]
    # Only present when a profiler ran: keeps un-profiled dumps (and the
    # tests pinning their exact keys) unchanged.
    if getattr(registry, "profile", None):
        payload["profile"] = {
            key: registry.profile[key] for key in sorted(registry.profile)
        }
    return payload


def write_json(registry: MetricsRegistry, path: str) -> None:
    """Write the registry dump to ``path`` as indented JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(registry_to_dict(registry), fh, indent=2, sort_keys=False)
        fh.write("\n")


def format_metrics(registry: MetricsRegistry) -> str:
    """Render the registry as aligned text tables (counters, gauges,
    histogram summaries), in the same style as the bench reports."""
    # Imported here: repro.analysis pulls in the attack/detector stack,
    # whose modules import repro.obs -- a module-level import would cycle.
    from repro.analysis.reporting import format_table

    sections: List[str] = []
    snap = registry.snapshot()
    counter_rows: List[Tuple[object, ...]] = [
        (name, value) for name, value in snap["counters"].items()
    ]
    if counter_rows:
        sections.append(
            format_table(["counter", "value"], counter_rows,
                         float_format=".0f", title="Counters")
        )
    gauge_rows = [(name, value) for name, value in snap["gauges"].items()]
    if gauge_rows:
        sections.append(format_table(["gauge", "value"], gauge_rows,
                                     title="Gauges"))
    hist_rows = [
        (
            name,
            summary.get("count", 0),
            summary.get("mean", float("nan")),
            summary.get("p50", float("nan")),
            summary.get("p99", float("nan")),
            summary.get("max", float("nan")),
        )
        for name, summary in snap["histograms"].items()
    ]
    if hist_rows:
        sections.append(
            format_table(
                ["histogram", "count", "mean", "p50", "p99", "max"],
                hist_rows,
                float_format=".6f",
                title="Histograms",
            )
        )
    if not sections:
        return "(no metrics collected)"
    return "\n\n".join(sections)
