"""Nested wall-clock tracing via the :func:`span` context manager.

Spans nest per thread: entering a span while another is open produces a
dotted path (``pscheme.monthly_scores.detect``), so one histogram per
stage accumulates under a stable name and the recorded span list can be
re-assembled into a call tree.  When the active registry is the no-op
sink, :func:`span` yields immediately without touching the clock.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry, get_registry

__all__ = [
    "SpanRecord",
    "span",
    "current_span_path",
    "fresh_span_stack",
    "span_stack_snapshot",
    "set_memory_tracking",
]


@dataclass
class SpanRecord:
    """One completed (or in-flight) traced section.

    ``pid`` identifies the process that ran the span: 0 means "the
    recording process" (filled in lazily by exporters), a concrete pid is
    stamped when a :class:`~repro.obs.capsule.TelemetryCapsule` ships the
    record across a process boundary, so merged traces keep worker lanes.
    """

    name: str
    path: str
    depth: int
    start: float = 0.0
    duration: float = 0.0
    annotations: dict = field(default_factory=dict)
    pid: int = 0

    def annotate(self, **kwargs) -> None:
        """Attach key/value context to the span (e.g. sizes, cache keys)."""
        self.annotations.update(kwargs)


#: Live span stacks indexed by thread id.  ``threading.local`` hides the
#: per-thread stacks from other threads, but the sampling profiler
#: (:mod:`repro.obs.profile`) must read *every* thread's innermost span
#: from its own sampler thread, so each stack list is also published
#: here.  Entries for finished threads linger (bounded by the number of
#: threads ever started) and simply read as empty stacks.
_stacks_by_thread: Dict[int, List["SpanRecord"]] = {}


class _SpanStack(threading.local):
    def __init__(self) -> None:
        self.items: List[SpanRecord] = []
        _stacks_by_thread[threading.get_ident()] = self.items


_stack = _SpanStack()


def current_span_path() -> str:
    """Dotted path of the innermost open span ("" outside any span)."""
    return _stack.items[-1].path if _stack.items else ""


def span_stack_snapshot() -> Dict[int, str]:
    """Innermost open span path per live thread ("" when none is open).

    Called from the profiler's sampler thread while other threads keep
    pushing and popping spans; a concurrently emptied stack is read as
    "no span open" rather than raising.
    """
    snapshot: Dict[int, str] = {}
    for tid, items in list(_stacks_by_thread.items()):
        try:
            snapshot[tid] = items[-1].path
        except IndexError:
            snapshot[tid] = ""
    return snapshot


@contextmanager
def fresh_span_stack() -> Iterator[None]:
    """Run a block with an empty span stack, restoring the old one after.

    Used by the execution engine around each captured task so that task
    spans always start at the root -- whether the task runs inline (the
    parent may have spans open) or in a forked pool worker (which
    inherited the parent's stack as of fork time).  This is what makes
    serial and parallel capsules carry identical span paths.  The
    published per-thread stack follows the swap so profiler samples taken
    during the block attribute to the task's spans, not the parent's.
    """
    tid = threading.get_ident()
    saved = _stack.items
    _stack.items = []
    _stacks_by_thread[tid] = _stack.items
    try:
        yield
    finally:
        _stack.items = saved
        _stacks_by_thread[tid] = saved


#: When True (set by :func:`set_memory_tracking` while a profiler with
#: memory telemetry is active) every span also records its tracemalloc
#: allocation delta and peak watermark.
_memory_tracking = False


def set_memory_tracking(enabled: bool) -> None:
    """Toggle per-span ``mem.*`` telemetry (requires tracemalloc tracing)."""
    global _memory_tracking
    _memory_tracking = bool(enabled)


_NULL_SPAN = SpanRecord(name="", path="", depth=0)


@contextmanager
def span(
    name: str, registry: Optional[MetricsRegistry] = None
) -> Iterator[SpanRecord]:
    """Time a section of code, nesting under any enclosing span.

    Usage::

        with span("pscheme.monthly_scores"):
            with span("detect"):
                ...

    records histograms ``span.pscheme.monthly_scores.seconds`` and
    ``span.pscheme.monthly_scores.detect.seconds`` into the registry
    (the explicit one, or whatever is globally active at entry).
    """
    reg = registry if registry is not None else get_registry()
    if reg is NULL_REGISTRY or not reg.enabled:
        # No sink: skip the clock and the stack entirely.
        yield _NULL_SPAN
        return
    parent = _stack.items[-1] if _stack.items else None
    path = f"{parent.path}.{name}" if parent is not None else name
    mem_base = None
    if _memory_tracking and tracemalloc.is_tracing():
        mem_base = tracemalloc.get_traced_memory()
    record = SpanRecord(
        name=name,
        path=path,
        depth=parent.depth + 1 if parent is not None else 0,
        start=time.perf_counter(),
    )
    _stack.items.append(record)
    try:
        yield record
    finally:
        record.duration = time.perf_counter() - record.start
        popped = _stack.items.pop()
        assert popped is record, "span stack corrupted"
        if mem_base is not None and tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            reg.observe(f"mem.{record.path}.alloc_bytes", current - mem_base[0])
            # Watermark above the span's entry level.  The global peak is
            # not reset per span (that would corrupt enclosing spans), so
            # this is an upper bound when the process peaked earlier.
            reg.observe(
                f"mem.{record.path}.peak_bytes", max(0.0, peak - mem_base[0])
            )
        reg.record_span(record)
