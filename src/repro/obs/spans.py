"""Nested wall-clock tracing via the :func:`span` context manager.

Spans nest per thread: entering a span while another is open produces a
dotted path (``pscheme.monthly_scores.detect``), so one histogram per
stage accumulates under a stable name and the recorded span list can be
re-assembled into a call tree.  When the active registry is the no-op
sink, :func:`span` yields immediately without touching the clock.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry, get_registry

__all__ = ["SpanRecord", "span", "current_span_path", "fresh_span_stack"]


@dataclass
class SpanRecord:
    """One completed (or in-flight) traced section.

    ``pid`` identifies the process that ran the span: 0 means "the
    recording process" (filled in lazily by exporters), a concrete pid is
    stamped when a :class:`~repro.obs.capsule.TelemetryCapsule` ships the
    record across a process boundary, so merged traces keep worker lanes.
    """

    name: str
    path: str
    depth: int
    start: float = 0.0
    duration: float = 0.0
    annotations: dict = field(default_factory=dict)
    pid: int = 0

    def annotate(self, **kwargs) -> None:
        """Attach key/value context to the span (e.g. sizes, cache keys)."""
        self.annotations.update(kwargs)


class _SpanStack(threading.local):
    def __init__(self) -> None:
        self.items: List[SpanRecord] = []


_stack = _SpanStack()


def current_span_path() -> str:
    """Dotted path of the innermost open span ("" outside any span)."""
    return _stack.items[-1].path if _stack.items else ""


@contextmanager
def fresh_span_stack() -> Iterator[None]:
    """Run a block with an empty span stack, restoring the old one after.

    Used by the execution engine around each captured task so that task
    spans always start at the root -- whether the task runs inline (the
    parent may have spans open) or in a forked pool worker (which
    inherited the parent's stack as of fork time).  This is what makes
    serial and parallel capsules carry identical span paths.
    """
    saved = _stack.items
    _stack.items = []
    try:
        yield
    finally:
        _stack.items = saved


_NULL_SPAN = SpanRecord(name="", path="", depth=0)


@contextmanager
def span(
    name: str, registry: Optional[MetricsRegistry] = None
) -> Iterator[SpanRecord]:
    """Time a section of code, nesting under any enclosing span.

    Usage::

        with span("pscheme.monthly_scores"):
            with span("detect"):
                ...

    records histograms ``span.pscheme.monthly_scores.seconds`` and
    ``span.pscheme.monthly_scores.detect.seconds`` into the registry
    (the explicit one, or whatever is globally active at entry).
    """
    reg = registry if registry is not None else get_registry()
    if reg is NULL_REGISTRY or not reg.enabled:
        # No sink: skip the clock and the stack entirely.
        yield _NULL_SPAN
        return
    parent = _stack.items[-1] if _stack.items else None
    path = f"{parent.path}.{name}" if parent is not None else name
    record = SpanRecord(
        name=name,
        path=path,
        depth=parent.depth + 1 if parent is not None else 0,
        start=time.perf_counter(),
    )
    _stack.items.append(record)
    try:
        yield record
    finally:
        record.duration = time.perf_counter() - record.start
        popped = _stack.items.pop()
        assert popped is record, "span stack corrupted"
        reg.record_span(record)
