"""Observability for the rating pipeline: metrics, spans, logs, exporters.

The pipeline (detectors -> joint detection -> trust -> aggregation ->
online epochs -> attack optimizer) is instrumented end to end through
this package:

- :class:`MetricsRegistry` -- process-local counters, gauges, and
  histograms with summary statistics.  The default global sink is
  :data:`NULL_REGISTRY` (no-op, near-zero overhead); install a collecting
  registry with :func:`set_registry` / :func:`use_registry`, or inject one
  into any instrumented component.
- :func:`span` -- nested wall-clock tracing; per-stage durations land in
  ``span.<dotted.path>.seconds`` histograms.
- :func:`setup_logging` / :func:`get_logger` -- structured ``key=value``
  logging under the ``repro`` logger tree (silent until configured).
- :func:`write_json` / :func:`format_metrics` -- exporters (JSON file,
  aligned text tables).
- :class:`TelemetryCapsule` -- pickleable registry snapshots that carry
  worker-side telemetry across process boundaries (merged back by the
  execution engine, so pooled runs export the same telemetry as serial).
- :func:`write_trace` / :func:`read_trace` / :func:`summarize_trace` --
  Chrome/Perfetto ``trace_event`` export of the recorded span tree, with
  one lane per worker process (plus a profiler-sample lane when one ran).
- :class:`SpanProfiler` -- low-overhead sampling wall-clock profiler
  whose samples attribute to the open span stack; exporters for
  collapsed-stack text, speedscope JSON, and the native
  ``--profile-out`` artifact (:mod:`repro.obs.profile`).
- :class:`RunLedger` / :func:`check_ledger` -- the persistent run ledger
  (JSONL, one record per invocation) and its regression checker.
- :func:`score_detection` / :class:`Scorecard` -- ground-truth detection
  scorecards: provenance-attributed confusion counts, detection latency,
  bias at detection, folded into ``quality.*`` metrics.
- :class:`DriftMonitor` -- assumption drift monitors (Poisson arrival
  dispersion, residual whiteness, mean drift) raising structured
  warnings and ``drift.*`` counters.
- :func:`render_html` / :func:`write_report` -- the self-contained
  HTML/Markdown run-report generator (inline SVG sparklines, zero
  external assets).
- :class:`TimeSeriesRecorder` -- per-epoch snapshots of the registry
  into ring-buffered metric series (epoch index as the time axis), with
  a JSONL streaming sink (``--metrics-stream``) and an OpenMetrics
  text-exposition writer (:mod:`repro.obs.series`).
- :class:`AlertRule` / :class:`AlertEngine` -- declarative alert
  conditions (threshold, rate-of-change, burn-rate) over recorded
  series, evaluated at epoch close with firing/resolved hysteresis
  (:mod:`repro.obs.alerts`); ``repro monitor`` renders the live view
  (:mod:`repro.obs.monitor`).

Quickstart::

    from repro.obs import MetricsRegistry, use_registry, write_json

    registry = MetricsRegistry()
    with use_registry(registry):
        scheme.monthly_scores(dataset)
    print(registry.counter_value("pscheme.scores_cache.misses"))
    write_json(registry, "metrics.json")
"""

from repro.obs.alerts import (
    DEFAULT_RULES_PATH,
    AlertEngine,
    AlertEvent,
    AlertRule,
    load_rules,
)
from repro.obs.capsule import TelemetryCapsule
from repro.obs.export import format_metrics, registry_to_dict, write_json
from repro.obs.ledger import (
    CheckReport,
    RunLedger,
    RunRecord,
    check_ledger,
    runtime_environment,
)
from repro.obs.logging_setup import get_logger, setup_logging
from repro.obs.trace import read_trace, summarize_trace, write_trace
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.profile import (
    DEFAULT_HZ,
    SpanProfiler,
    collapsed_stacks,
    disable_profiling,
    enable_profiling,
    maybe_task_profiler,
    profiling_enabled,
    read_profile,
    read_speedscope,
    span_self_seconds,
    span_self_times,
    speedscope_document,
    write_profile,
    write_speedscope,
)
from repro.obs.series import (
    DEFAULT_SERIES_IGNORE,
    MetricsStreamWriter,
    TimeSeriesRecorder,
    flatten_registry,
    parse_openmetrics,
    read_metrics_stream,
    render_openmetrics,
)
from repro.obs.monitor import render_frame, replay_stream, sparkline
from repro.obs.spans import (
    SpanRecord,
    current_span_path,
    fresh_span_stack,
    span,
    span_stack_snapshot,
)

# Imported last: repro.obs.quality pulls in repro.detectors, whose
# modules import the names above from this (then partially initialized)
# package.
from repro.obs.drift import (  # noqa: E402
    DriftMonitor,
    DriftMonitorConfig,
    DriftWarning,
)
from repro.obs.quality import (  # noqa: E402
    ConfusionCounts,
    Scorecard,
    aggregate_confusions,
    emit_scorecard,
    roc_auc,
    score_detection,
)
from repro.obs.report import (  # noqa: E402
    ReportData,
    RocSweep,
    confusion_from_counters,
    render_html,
    render_markdown,
    report_from_registry,
    svg_roc,
    svg_sparkline,
    write_report,
)

__all__ = [
    "TelemetryCapsule",
    "RunLedger",
    "RunRecord",
    "CheckReport",
    "check_ledger",
    "runtime_environment",
    "write_trace",
    "read_trace",
    "summarize_trace",
    "fresh_span_stack",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "SpanRecord",
    "span",
    "current_span_path",
    "span_stack_snapshot",
    "DEFAULT_HZ",
    "SpanProfiler",
    "collapsed_stacks",
    "disable_profiling",
    "enable_profiling",
    "maybe_task_profiler",
    "profiling_enabled",
    "read_profile",
    "read_speedscope",
    "span_self_seconds",
    "span_self_times",
    "speedscope_document",
    "write_profile",
    "write_speedscope",
    "get_logger",
    "setup_logging",
    "format_metrics",
    "registry_to_dict",
    "write_json",
    "ConfusionCounts",
    "Scorecard",
    "aggregate_confusions",
    "emit_scorecard",
    "roc_auc",
    "score_detection",
    "DriftMonitor",
    "DriftMonitorConfig",
    "DriftWarning",
    "ReportData",
    "RocSweep",
    "confusion_from_counters",
    "render_html",
    "render_markdown",
    "report_from_registry",
    "svg_roc",
    "svg_sparkline",
    "write_report",
    "DEFAULT_RULES_PATH",
    "DEFAULT_SERIES_IGNORE",
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "MetricsStreamWriter",
    "TimeSeriesRecorder",
    "flatten_registry",
    "load_rules",
    "parse_openmetrics",
    "read_metrics_stream",
    "render_frame",
    "render_openmetrics",
    "replay_stream",
    "sparkline",
]
