"""Terminal rendering for live telemetry: sparklines + alert state.

``repro monitor`` tails a ``--metrics-stream`` JSONL file (see
:class:`~repro.obs.series.MetricsStreamWriter`), folds each epoch
snapshot into a local :class:`~repro.obs.series.TimeSeriesRecorder`,
re-evaluates the alert ruleset, and renders a plain-text frame: one
unicode sparkline per series plus the current alert board.  Everything
here is pure string building over recorder state -- the CLI owns the
tailing loop and the screen.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.obs.alerts import AlertEngine
from repro.obs.series import TimeSeriesRecorder, read_metrics_stream

__all__ = [
    "render_frame",
    "replay_stream",
    "sparkline",
]

#: Eight vertical-bar glyphs, lowest to highest.
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """A unicode sparkline over ``values``, resampled to ``width`` cells.

    Non-finite values render as spaces; a flat (or single-point) series
    renders at mid-height so it stays visible.
    """
    if not values or width < 1:
        return ""
    if len(values) > width:
        # Keep the most recent ``width`` points: the monitor is a tail.
        values = list(values)[-width:]
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return " " * len(values)
    low, high = min(finite), max(finite)
    span = high - low
    cells: List[str] = []
    for value in values:
        if not math.isfinite(value):
            cells.append(" ")
        elif span <= 0:
            cells.append(SPARK_GLYPHS[len(SPARK_GLYPHS) // 2])
        else:
            rank = (value - low) / span
            index = min(int(rank * len(SPARK_GLYPHS)), len(SPARK_GLYPHS) - 1)
            cells.append(SPARK_GLYPHS[index])
    return "".join(cells)


def _format_value(value: float) -> str:
    """A compact numeric rendering for the frame's value column."""
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def replay_stream(
    path,
    engine: Optional[AlertEngine] = None,
    capacity: int = 1024,
) -> Tuple[TimeSeriesRecorder, List]:
    """Fold every snapshot of a metrics-stream file into a fresh recorder.

    Returns the populated recorder and the full list of alert events the
    replay produced (empty when no ``engine`` is given).  Replay drives
    the engine exactly like the live epoch-close path, so the monitor's
    alert board matches what the producing run would have reported.
    """
    recorder = TimeSeriesRecorder(capacity=capacity, engine=engine)
    events: List = []
    for epoch, metrics in read_metrics_stream(path):
        events.extend(recorder.ingest_snapshot(epoch, metrics))
    return recorder, events


def render_frame(
    recorder: TimeSeriesRecorder,
    engine: Optional[AlertEngine] = None,
    select: Sequence[str] = (),
    top: int = 16,
    width: int = 32,
    title: str = "",
) -> str:
    """One monitor frame: header, per-series sparklines, alert board.

    ``select`` filters series by substring (any match keeps the series);
    at most ``top`` series render, alphabetically, after filtering.
    """
    lines: List[str] = []
    epoch = recorder.last_epoch
    header = (
        f"epoch {epoch}" if epoch is not None else "no snapshots yet"
    )
    names = recorder.names()
    if select:
        names = [n for n in names if any(s in n for s in select)]
    shown = names[: max(top, 0)]
    lines.append(
        (f"{title} · " if title else "")
        + f"{header} · {len(recorder.names())} series"
        + (f" · showing {len(shown)}" if len(shown) < len(names) else "")
    )
    if shown:
        name_width = max(len(name) for name in shown)
        for name in shown:
            points = recorder.series(name)
            values = [value for _, value in points]
            lines.append(
                f"  {name.ljust(name_width)}  "
                f"{sparkline(values, width).ljust(width)}  "
                f"{_format_value(values[-1])}"
            )
    if engine is not None:
        firing = set(engine.firing())
        lines.append("")
        lines.append(
            f"alerts: {len(firing)} firing / {len(engine.rules)} rules"
        )
        for rule in engine.rules:
            marker = "FIRING" if rule.name in firing else "ok"
            detail = ""
            if rule.name in firing:
                latest = [
                    e
                    for e in engine.events
                    if e.rule == rule.name and e.state == "firing"
                ]
                if latest:
                    event = latest[-1]
                    detail = (
                        f"  since epoch {event.epoch} "
                        f"(latency {event.latency_epochs} epochs, "
                        f"value {_format_value(event.value)})"
                    )
            lines.append(
                f"  [{marker:>6}] {rule.name} "
                f"({rule.kind} {rule.metric} {rule.op} "
                f"{_format_value(rule.value)}){detail}"
            )
    return "\n".join(lines) + "\n"
