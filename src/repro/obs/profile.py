"""Span-attributed sampling profiler with flamegraph-ready exporters.

:class:`SpanProfiler` runs a background daemon thread that periodically
(``hz`` times per second) snapshots every tracked thread's Python frame
stack via ``sys._current_frames`` and the innermost open span via
:func:`~repro.obs.spans.span_stack_snapshot`.  Each sample becomes one
*collapsed-stack key*::

    span:<innermost.span.path>;<frame>;<frame>;...;<leaf frame>

where frames are ``<src-relative-file>:<function>`` labels ordered
root-to-leaf (``span:-`` marks samples taken outside any span).  Keys
aggregate into ``registry.profile`` -- a plain ``{key: sample_count}``
dict -- so profiles merge across processes exactly like counters do:
counts add per key, in task order, deterministically
(:class:`~repro.obs.capsule.TelemetryCapsule`).

Design points:

- **Zero overhead when disabled.**  Nothing starts unless a profiler is
  constructed and started; the instrumented code paths are untouched.
- **Attribution rides the span tree.**  Because the sampler reads the
  same per-thread span stacks the :func:`~repro.obs.spans.span` context
  manager maintains, every sample lands under the span that was open
  when it fired -- ``detector.HC`` gets self-time and a per-frame
  breakdown without any detector code changes beyond opening spans.
- **One profiler samples at a time.**  Profilers nest on a process-wide
  stack; only the innermost records.  The execution engine starts a
  per-task profiler inside each captured task, so a CLI-level profiler
  never double-counts the same thread during serial (``workers=0``)
  dispatch, and forked pool workers (which inherit the parent's stack
  entry whose thread is dead) sample correctly under their own.
- **Memory telemetry is separately opt-in.**  ``memory=True`` starts
  ``tracemalloc`` and turns on per-span ``mem.<path>.alloc_bytes`` /
  ``mem.<path>.peak_bytes`` histograms plus final ``mem.current_bytes``
  / ``mem.peak_bytes`` gauges.  tracemalloc costs far more than the
  sampler itself, which is why it does not ride the default switch.

Exporters: :func:`collapsed_stacks` (flamegraph.pl-compatible text),
:func:`speedscope_document` / :func:`write_speedscope` (sampled-profile
speedscope JSON), :func:`profile_trace_events` (a profile lane merged
into the Perfetto ``trace_event`` export), and :func:`write_profile` /
:func:`read_profile` (the native ``--profile-out`` artifact).
"""

from __future__ import annotations

import json
import math
import os
import sys
import threading
import time
import tracemalloc
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ValidationError
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.spans import set_memory_tracking, span_stack_snapshot

__all__ = [
    "DEFAULT_HZ",
    "SpanProfiler",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "profiling_hz",
    "maybe_task_profiler",
    "reparent_profile_key",
    "attributed_fraction",
    "self_seconds_by_span",
    "top_frames",
    "span_self_times",
    "span_self_seconds",
    "collapsed_stacks",
    "speedscope_document",
    "write_speedscope",
    "read_speedscope",
    "profile_trace_events",
    "write_profile",
    "read_profile",
]

#: Default sampling rate.  A prime avoids phase-locking with periodic
#: work (epoch loops, pool heartbeats) that an even rate could alias.
DEFAULT_HZ = 97

#: The synthetic Perfetto thread id profile lanes render under.
PROFILE_TID = 1

#: Collapsed-stack keys start with this prefix + the span path.
_SPAN_PREFIX = "span:"

#: The span segment of a sample taken outside any open span.
_UNATTRIBUTED = "span:-"

_SRC_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
_SRC_PREFIX = _SRC_ROOT + os.sep

#: Nested profilers, innermost last; only the top of the stack records.
_profiler_stack: List["SpanProfiler"] = []

#: Sampler-thread idents -- excluded from sampling so the profiler never
#: profiles itself (or a sibling profiler).
_sampler_threads: Set[int] = set()

_label_cache: Dict[Tuple[str, str], str] = {}


def _frame_label(code) -> str:
    """``<src-relative-file>:<function>`` for one code object (cached)."""
    cache_key = (code.co_filename, code.co_name)
    label = _label_cache.get(cache_key)
    if label is None:
        filename = code.co_filename
        if filename.startswith(_SRC_PREFIX):
            short = filename[len(_SRC_PREFIX):]
        else:
            short = os.path.basename(filename)
        label = f"{short}:{code.co_name}"
        _label_cache[cache_key] = label
    return label


class SpanProfiler:
    """Background sampling profiler attributed to the open span stack.

    Parameters
    ----------
    registry:
        Where samples (and the ``profile.*`` / ``mem.*`` metrics) land at
        :meth:`stop`; ``None`` uses the globally active registry at stop
        time.
    hz:
        Samples per second (default :data:`DEFAULT_HZ`).
    memory:
        Also start ``tracemalloc`` and record per-span allocation deltas
        and peak watermarks (significantly more overhead than sampling).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        hz: int = DEFAULT_HZ,
        memory: bool = False,
    ) -> None:
        if hz <= 0:
            raise ValidationError(f"profiler hz must be positive, got {hz}")
        self.hz = int(hz)
        self.memory = bool(memory)
        self.samples: Dict[str, float] = {}
        self._registry = registry
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._owns_tracemalloc = False

    # ------------------------------------------------------------------ #

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "SpanProfiler":
        """Start the sampler thread (idempotent while running)."""
        if self._thread is not None:
            return self
        if self.memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._owns_tracemalloc = True
            set_memory_tracking(True)
        self._stop_event.clear()
        _profiler_stack.append(self)
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Dict[str, float]:
        """Stop sampling and flush samples/metrics into the registry."""
        if self._thread is None:
            return dict(self.samples)
        self._stop_event.set()
        self._thread.join(timeout=5.0)
        _sampler_threads.discard(self._thread.ident)
        self._thread = None
        try:
            _profiler_stack.remove(self)
        except ValueError:
            pass  # e.g. a forked child stopping the inherited profiler
        registry = self.registry
        if self.memory:
            set_memory_tracking(False)
            if tracemalloc.is_tracing():
                current, peak = tracemalloc.get_traced_memory()
                registry.set_gauge("mem.current_bytes", float(current))
                registry.set_gauge("mem.peak_bytes", float(peak))
                if self._owns_tracemalloc:
                    tracemalloc.stop()
                    self._owns_tracemalloc = False
        if self.samples:
            registry.add_profile_samples(self.samples)
        total = sum(self.samples.values())
        registry.set_gauge("profile.hz", float(self.hz))
        registry.inc("profile.samples", total)
        registry.inc(
            "profile.samples.unattributed",
            sum(
                count
                for key, count in self.samples.items()
                if key.startswith(_UNATTRIBUTED)
            ),
        )
        return dict(self.samples)

    def __enter__(self) -> "SpanProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #

    def _run(self) -> None:
        _sampler_threads.add(threading.get_ident())
        interval = 1.0 / self.hz
        # Absolute deadlines: waiting a fixed interval *between* samples
        # would add per-tick wait/sampling overhead to the period and
        # undershoot the configured rate.
        next_at = time.perf_counter() + interval
        while True:
            delay = next_at - time.perf_counter()
            if self._stop_event.wait(max(0.0, delay)):
                return
            self._sample_once()
            next_at += interval
            now = time.perf_counter()
            if next_at < now:
                # Sampling could not keep up; skip the missed ticks
                # rather than burst to catch up.
                next_at = now + interval

    def _sample_once(self) -> None:
        # Only the innermost active profiler records: when the execution
        # engine runs a captured task under its own profiler, an outer
        # CLI-level profiler must not double-count the same thread.
        if _profiler_stack and _profiler_stack[-1] is not self:
            return
        stacks = span_stack_snapshot()
        current = sys._current_frames()
        try:
            for tid, top in current.items():
                if tid in _sampler_threads:
                    continue
                span_path = stacks.get(tid)
                if span_path is None:
                    # The thread never touched the span machinery (pool
                    # plumbing, logging, ...): not pipeline work.
                    continue
                labels: List[str] = []
                frame = top
                while frame is not None:
                    labels.append(_frame_label(frame.f_code))
                    frame = frame.f_back
                labels.append(f"{_SPAN_PREFIX}{span_path or '-'}")
                labels.reverse()
                key = ";".join(labels)
                self.samples[key] = self.samples.get(key, 0.0) + 1.0
        finally:
            del current


# --------------------------------------------------------------------- #
# Process-wide enablement (inherited by forked pool workers)
# --------------------------------------------------------------------- #

_enabled_hz: Optional[int] = None
_enabled_memory = False


def enable_profiling(hz: int = DEFAULT_HZ, memory: bool = False) -> None:
    """Mark profiling globally enabled (captured tasks self-profile)."""
    global _enabled_hz, _enabled_memory
    _enabled_hz = int(hz)
    _enabled_memory = bool(memory)


def disable_profiling() -> None:
    """Clear the global profiling switch."""
    global _enabled_hz, _enabled_memory
    _enabled_hz = None
    _enabled_memory = False


def profiling_enabled() -> bool:
    """Whether :func:`enable_profiling` is in effect."""
    return _enabled_hz is not None


def profiling_hz() -> int:
    """The globally configured sampling rate (default when disabled)."""
    return _enabled_hz if _enabled_hz is not None else DEFAULT_HZ


def maybe_task_profiler(
    registry: MetricsRegistry,
) -> Optional[SpanProfiler]:
    """A started per-task profiler when profiling is globally enabled.

    Called by the execution engine inside each captured task (worker- or
    parent-side) so worker samples land in the task's local registry and
    ride back in its :class:`~repro.obs.capsule.TelemetryCapsule`.
    """
    if _enabled_hz is None:
        return None
    return SpanProfiler(
        registry, hz=_enabled_hz, memory=_enabled_memory
    ).start()


# --------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------- #


def reparent_profile_key(key: str, parent_path: str) -> str:
    """Prefix a sample key's span segment with the dispatching span path.

    Mirrors the span re-parenting capsules apply on merge; unattributed
    samples (``span:-``) stay unattributed.
    """
    if (
        not parent_path
        or not key.startswith(_SPAN_PREFIX)
        or key.startswith(_UNATTRIBUTED)
    ):
        return key
    return f"{_SPAN_PREFIX}{parent_path}.{key[len(_SPAN_PREFIX):]}"


def attributed_fraction(samples: Dict[str, float]) -> float:
    """Fraction of samples attributed to an open span (1.0 when empty)."""
    total = sum(samples.values())
    if not total:
        return 1.0
    unattributed = sum(
        count
        for key, count in samples.items()
        if key.startswith(_UNATTRIBUTED)
    )
    return (total - unattributed) / total


def self_seconds_by_span(
    samples: Dict[str, float], hz: float = DEFAULT_HZ
) -> Dict[str, float]:
    """Sampled self-seconds per innermost span path ("-" = no span)."""
    out: Dict[str, float] = {}
    for key, count in samples.items():
        root = key.split(";", 1)[0]
        path = root[len(_SPAN_PREFIX):] if root.startswith(_SPAN_PREFIX) else root
        out[path] = out.get(path, 0.0) + count / hz
    return out


def top_frames(
    samples: Dict[str, float], n: int = 10
) -> List[Tuple[str, float]]:
    """The ``n`` leaf frames holding the most samples (self time)."""
    per_frame: Dict[str, float] = {}
    for key, count in samples.items():
        leaf = key.rsplit(";", 1)[-1]
        if leaf.startswith(_SPAN_PREFIX):
            continue  # a sample with no Python frames (should not happen)
        per_frame[leaf] = per_frame.get(leaf, 0.0) + count
    ranked = sorted(per_frame.items(), key=lambda item: (-item[1], item[0]))
    return ranked[: max(0, n)]


def span_self_times(spans: Sequence) -> Dict[str, List[float]]:
    """Per-record exclusive (self) seconds, grouped by span path.

    Derived from wall-clock containment: within each producing process,
    spans are sorted by start time and a child's duration is subtracted
    from its innermost enclosing parent.  Nested spans therefore no
    longer double-count, which is what makes per-phase percentiles in
    the run ledger honest.
    """
    per_record: Dict[int, float] = {
        id(record): record.duration for record in spans
    }
    by_pid: Dict[int, List] = defaultdict(list)
    for record in spans:
        by_pid[record.pid].append(record)
    for records in by_pid.values():
        records.sort(key=lambda r: (r.start, -r.duration))
        stack: List = []
        for record in records:
            while stack and record.start >= (
                stack[-1].start + stack[-1].duration - 1e-12
            ):
                stack.pop()
            if stack:
                per_record[id(stack[-1])] -= record.duration
            stack.append(record)
    grouped: Dict[str, List[float]] = defaultdict(list)
    for record in spans:
        grouped[record.path].append(per_record[id(record)])
    return dict(grouped)


def span_self_seconds(spans: Sequence) -> Dict[str, float]:
    """Total exclusive (self) seconds per span path (see span_self_times)."""
    return {
        path: sum(values)
        for path, values in span_self_times(spans).items()
    }


# --------------------------------------------------------------------- #
# Exporters
# --------------------------------------------------------------------- #


def collapsed_stacks(samples: Dict[str, float]) -> str:
    """flamegraph.pl-compatible collapsed-stack text (one line per key)."""
    lines = [
        f"{key} {samples[key]:.0f}"
        for key in sorted(samples)
        if samples[key] > 0
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope_document(
    samples: Dict[str, float],
    hz: float = DEFAULT_HZ,
    name: str = "repro profile",
) -> Dict[str, object]:
    """A speedscope sampled-profile document for ``samples``."""
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, str]] = []
    sample_stacks: List[List[int]] = []
    weights: List[float] = []
    for key in sorted(samples):
        stack: List[int] = []
        for label in key.split(";"):
            index = frame_index.get(label)
            if index is None:
                index = frame_index[label] = len(frames)
                frames.append({"name": label})
            stack.append(index)
        sample_stacks.append(stack)
        weights.append(samples[key] / hz)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "exporter": "repro.obs.profile",
        "name": name,
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": sum(weights),
                "samples": sample_stacks,
                "weights": weights,
            }
        ],
    }


def write_speedscope(
    samples: Dict[str, float],
    path: os.PathLike,
    hz: float = DEFAULT_HZ,
    name: str = "repro profile",
) -> int:
    """Write the speedscope document to ``path``; returns the key count."""
    document = speedscope_document(samples, hz=hz, name=name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return len(samples)


def read_speedscope(path: os.PathLike) -> Dict[str, object]:
    """Load and structurally validate a speedscope JSON file.

    Raises :class:`~repro.errors.ValidationError` on anything the
    speedscope importer would reject: missing ``shared.frames`` /
    ``profiles``, mismatched ``samples``/``weights`` lengths, or frame
    indices outside the shared frame table.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except ValueError as exc:
        raise ValidationError(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(payload, dict):
        raise ValidationError(f"{path}: expected a JSON object")
    shared = payload.get("shared")
    if not isinstance(shared, dict) or not isinstance(
        shared.get("frames"), list
    ):
        raise ValidationError(f"{path}: missing 'shared.frames' list")
    profiles = payload.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        raise ValidationError(f"{path}: missing non-empty 'profiles' list")
    n_frames = len(shared["frames"])
    for p_index, profile in enumerate(profiles):
        if not isinstance(profile, dict) or profile.get("type") != "sampled":
            raise ValidationError(
                f"{path}: profile #{p_index} is not a sampled profile"
            )
        sample_stacks = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(sample_stacks, list) or not isinstance(
            weights, list
        ) or len(sample_stacks) != len(weights):
            raise ValidationError(
                f"{path}: profile #{p_index} samples/weights length mismatch"
            )
        for stack in sample_stacks:
            if not isinstance(stack, list) or any(
                not isinstance(i, int) or not (0 <= i < n_frames)
                for i in stack
            ):
                raise ValidationError(
                    f"{path}: profile #{p_index} has a frame index outside "
                    "the shared frame table"
                )
    return payload


def profile_trace_events(
    samples: Dict[str, float],
    hz: float = DEFAULT_HZ,
    base_pid: Optional[int] = None,
    start_ts: float = 0.0,
) -> List[Dict[str, object]]:
    """Profile samples as a synthetic Perfetto lane of complete events.

    Keys render as back-to-back "X" events (duration = samples / hz) on
    a dedicated thread lane (:data:`PROFILE_TID`), ordered by sorted key
    so the lane is deterministic for a given profile.
    """
    base_pid = os.getpid() if base_pid is None else int(base_pid)
    events: List[Dict[str, object]] = []
    ts = float(start_ts)
    for key in sorted(samples):
        count = samples[key]
        if count <= 0:
            continue
        duration_us = count / hz * 1e6
        segments = key.split(";")
        events.append(
            {
                "name": segments[-1],
                "cat": "profile",
                "ph": "X",
                "ts": ts,
                "dur": duration_us,
                "pid": base_pid,
                "tid": PROFILE_TID,
                "args": {
                    "span": segments[0][len(_SPAN_PREFIX):],
                    "stack": key,
                    "samples": count,
                },
            }
        )
        ts += duration_us
    return events


def registry_hz(registry: MetricsRegistry) -> float:
    """The sampling rate a registry's profile was collected at."""
    gauge = registry.gauges.get("profile.hz")
    if gauge is not None and not math.isnan(gauge.value) and gauge.value > 0:
        return float(gauge.value)
    return float(DEFAULT_HZ)


def write_profile(registry: MetricsRegistry, path: os.PathLike) -> int:
    """Write the registry's profile as the native artifact JSON.

    Returns the total sample count.  The artifact is self-describing
    (schema/kind/hz) so ``repro profile`` can re-export it to any of the
    other formats without the original registry.
    """
    samples = {key: registry.profile[key] for key in sorted(registry.profile)}
    hz = registry_hz(registry)
    total = sum(samples.values())
    payload = {
        "schema": 1,
        "kind": "repro.profile",
        # When the profile was captured -- provenance for humans diffing
        # artifacts, never an input to any fingerprinted computation.
        "captured_at": time.time(),  # lint: ignore[wall-clock]
        "hz": hz,
        "total_samples": total,
        "attributed_fraction": attributed_fraction(samples),
        "samples": samples,
        "self_seconds_by_span": dict(
            sorted(self_seconds_by_span(samples, hz=hz).items())
        ),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    registry.inc("profile.artifacts_written")
    return int(total)


def read_profile(path: os.PathLike) -> Dict[str, object]:
    """Load and structurally validate a ``--profile-out`` artifact."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except ValueError as exc:
        raise ValidationError(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(payload, dict) or payload.get("kind") != "repro.profile":
        raise ValidationError(
            f"{path}: expected a 'repro.profile' artifact object"
        )
    hz = payload.get("hz")
    if not isinstance(hz, (int, float)) or hz <= 0:
        raise ValidationError(f"{path}: missing positive numeric 'hz'")
    samples = payload.get("samples")
    if not isinstance(samples, dict) or any(
        not isinstance(count, (int, float)) for count in samples.values()
    ):
        raise ValidationError(
            f"{path}: 'samples' must map stack keys to numeric counts"
        )
    return payload
