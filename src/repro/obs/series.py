"""Time-series telemetry: per-epoch snapshots of the metrics registry.

The registry (:mod:`repro.obs.registry`) collects *scalars*: by the end
of a run you know that ``drift.warnings`` is 3, but not *when* the
warnings happened.  For the online system (:mod:`repro.online`) --
whose whole point is operating over time -- that loses exactly the
signal an operator needs.  This module adds the time axis:

- :class:`TimeSeriesRecorder` attaches to a :class:`~repro.obs.registry.
  MetricsRegistry` and, at every epoch close, flattens the registry's
  counters, gauges, and histogram summaries into one numeric snapshot
  appended to ring-buffered per-metric series.  The time axis is the
  **epoch index**, never the wall clock, so recorded series are
  bit-reproducible across runs (and ``repro.lint``'s wall-clock rule
  stays clean).
- Recorder state is pickleable and merges **order-independently**
  (point union keyed by epoch, ties resolved by ``max``), mirroring the
  capsule contract: serial and hermetic-parallel runs export identical
  series.
- :class:`MetricsStreamWriter` streams one JSON line per epoch to disk
  (the ``--metrics-stream`` CLI flag), flushed at epoch close so
  ``repro monitor`` can tail a live run.
- :func:`render_openmetrics` writes the OpenMetrics / Prometheus text
  exposition format for the future service endpoint, and
  :func:`parse_openmetrics` reads it back (golden-file tested).
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.obs.ledger import DEFAULT_IGNORE_PREFIXES
from repro.obs.registry import MetricsRegistry

__all__ = [
    "DEFAULT_SERIES_IGNORE",
    "MetricsStreamWriter",
    "TimeSeriesRecorder",
    "flatten_registry",
    "parse_openmetrics",
    "read_metrics_stream",
    "render_openmetrics",
]

#: Namespaces excluded from series by default: run bookkeeping that is
#: legitimately topology- or timing-dependent (same set the ledger
#: comparator ignores), plus per-span timing histograms.
DEFAULT_SERIES_IGNORE: Tuple[str, ...] = DEFAULT_IGNORE_PREFIXES + ("span.",)

#: Histogram summary fields exported as derived series (``<name>.count``
#: etc.).  Timing histograms (``*.seconds``) export only ``count`` unless
#: ``timing_detail`` is set: their values are wall-clock noise.
_HISTOGRAM_FIELDS: Tuple[str, ...] = ("count", "mean", "p50", "p90", "max")

#: Suffixes a series name may carry when it is derived from a histogram
#: (used by the alert-rule lint check to resolve names to the catalog).
HISTOGRAM_SERIES_SUFFIXES: Tuple[str, ...] = tuple(
    f".{field}" for field in _HISTOGRAM_FIELDS
)


def flatten_registry(
    registry: MetricsRegistry,
    ignore_prefixes: Sequence[str] = DEFAULT_SERIES_IGNORE,
    timing_detail: bool = False,
) -> Dict[str, float]:
    """One numeric value per metric: the registry as a flat snapshot.

    Counters map to their value, gauges to their level (non-finite
    levels are skipped -- an unset gauge is NaN), and each non-empty
    histogram to derived ``<name>.count`` / ``.mean`` / ``.p50`` /
    ``.p90`` / ``.max`` entries with non-finite fields skipped
    individually.
    """
    ignore = tuple(ignore_prefixes)
    flat: Dict[str, float] = {}
    for name, counter in sorted(registry.counters.items()):
        if name.startswith(ignore):
            continue
        flat[name] = float(counter.value)
    for name, gauge in sorted(registry.gauges.items()):
        if name.startswith(ignore) or not math.isfinite(gauge.value):
            continue
        flat[name] = float(gauge.value)
    for name, hist in sorted(registry.histograms.items()):
        if name.startswith(ignore) or not hist.count:
            continue
        flat[f"{name}.count"] = float(hist.count)
        if name.endswith(".seconds") and not timing_detail:
            continue
        values = {
            "mean": hist.mean,
            "p50": hist.percentile(50),
            "p90": hist.percentile(90),
            "max": hist.max,
        }
        for field, value in values.items():
            if math.isfinite(value):
                flat[f"{name}.{field}"] = float(value)
    return flat


class TimeSeriesRecorder:
    """Ring-buffered per-metric series sampled at epoch boundaries.

    Attach one to a registry (``registry.attach_series(recorder)``) and
    call :meth:`record_epoch` at each epoch close; the recorder snapshots
    the registry, appends one ``(epoch, value)`` point per metric, writes
    the snapshot to the configured ``sink`` (if any), and evaluates the
    configured alert ``engine`` (if any), returning the alert events the
    epoch produced.

    Determinism contract: the time axis is the epoch index, conflicting
    points for the same epoch resolve to ``max``, and :meth:`merge_state`
    is commutative and associative -- folding worker capsules in any
    order yields bit-identical series.
    """

    def __init__(
        self,
        capacity: int = 1024,
        ignore_prefixes: Sequence[str] = DEFAULT_SERIES_IGNORE,
        timing_detail: bool = False,
        sink: Optional["MetricsStreamWriter"] = None,
        engine=None,
    ) -> None:
        if capacity < 1:
            raise ValidationError(f"series capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.ignore_prefixes = tuple(ignore_prefixes)
        self.timing_detail = bool(timing_detail)
        self.sink = sink
        self.engine = engine
        self._points: Dict[str, List[Tuple[int, float]]] = {}
        self.snapshots_recorded = 0
        self.last_epoch: Optional[int] = None

    # -- recording ------------------------------------------------------ #

    def record_epoch(self, epoch: int, registry: MetricsRegistry) -> list:
        """Snapshot ``registry`` at epoch ``epoch``; return alert events.

        The snapshot is taken *before* the recorder's own ``series.*``
        metrics are bumped, so self-telemetry appears in series from the
        following epoch -- deterministically, regardless of topology.
        """
        epoch = int(epoch)
        snapshot = flatten_registry(
            registry, self.ignore_prefixes, self.timing_detail
        )
        dropped = 0
        for name, value in snapshot.items():
            dropped += self._append(name, epoch, value)
        self.snapshots_recorded += 1
        if self.last_epoch is None or epoch > self.last_epoch:
            self.last_epoch = epoch
        registry.inc("series.snapshots")
        registry.set_gauge("series.metrics", float(len(self._points)))
        if dropped:
            registry.inc("series.dropped_points", dropped)
        if self.sink is not None:
            self.sink.write(epoch, snapshot)
        if self.engine is not None:
            return self.engine.evaluate(self, epoch, registry=registry)
        return []

    def ingest_snapshot(self, epoch: int, metrics: Mapping[str, float]) -> list:
        """Fold an externally produced snapshot (e.g. a replayed JSONL
        line) into the series; return alert events, like
        :meth:`record_epoch`, but with no registry side effects."""
        epoch = int(epoch)
        for name, value in sorted(metrics.items()):
            value = float(value)
            if math.isfinite(value):
                self._append(name, epoch, value)
        self.snapshots_recorded += 1
        if self.last_epoch is None or epoch > self.last_epoch:
            self.last_epoch = epoch
        if self.engine is not None:
            return self.engine.evaluate(self, epoch)
        return []

    def _append(self, name: str, epoch: int, value: float) -> int:
        """Append one point; return how many old points fell off the ring."""
        points = self._points.setdefault(name, [])
        if points and points[-1][0] == epoch:
            points[-1] = (epoch, max(points[-1][1], value))
            return 0
        points.append((epoch, value))
        overflow = len(points) - self.capacity
        if overflow > 0:
            del points[:overflow]
            return overflow
        return 0

    # -- inspection ----------------------------------------------------- #

    @property
    def empty(self) -> bool:
        """True when no snapshot has contributed any point."""
        return not self._points

    def names(self) -> List[str]:
        """Sorted names of every recorded series."""
        return sorted(self._points)

    def series(self, name: str) -> List[Tuple[int, float]]:
        """The ``(epoch, value)`` points recorded for ``name``."""
        return list(self._points.get(name, ()))

    def latest(self) -> Dict[str, float]:
        """The most recent value of every series."""
        return {name: points[-1][1] for name, points in self._points.items()}

    # -- capsule-style state -------------------------------------------- #

    def state(self) -> Dict[str, object]:
        """The full pickleable state (plain containers only)."""
        return {
            "capacity": self.capacity,
            "snapshots": self.snapshots_recorded,
            "last_epoch": self.last_epoch,
            "points": {
                name: [list(point) for point in points]
                for name, points in self._points.items()
            },
        }

    def merge_state(self, state: Mapping[str, object]) -> None:
        """Fold another recorder's :meth:`state` into this one.

        Point sets union per series keyed by epoch; a conflicting epoch
        resolves to ``max``, which commutes and associates, so merge
        order never changes the result.  Rings re-truncate to this
        recorder's capacity, keeping the most recent epochs.
        """
        for name, points in state.get("points", {}).items():
            merged = {epoch: value for epoch, value in self._points.get(name, ())}
            for epoch, value in points:
                epoch = int(epoch)
                value = float(value)
                if epoch in merged:
                    merged[epoch] = max(merged[epoch], value)
                else:
                    merged[epoch] = value
            ordered = sorted(merged.items())
            self._points[name] = ordered[-self.capacity:]
        self.snapshots_recorded += int(state.get("snapshots", 0))
        other_last = state.get("last_epoch")
        if other_last is not None:
            if self.last_epoch is None or int(other_last) > self.last_epoch:
                self.last_epoch = int(other_last)

    def clear(self) -> None:
        """Drop every recorded point (capacity and wiring stay)."""
        self._points.clear()
        self.snapshots_recorded = 0
        self.last_epoch = None


class MetricsStreamWriter:
    """A JSONL sink: one flat snapshot per line, flushed per epoch.

    The format is ``{"epoch": N, "metrics": {name: value, ...}}`` with
    sorted keys, so a stream file diffs cleanly across runs and a tail
    reader (``repro monitor``) sees complete lines as epochs close.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.lines_written = 0

    def write(self, epoch: int, metrics: Mapping[str, float]) -> None:
        """Append one epoch snapshot and flush."""
        line = json.dumps(
            {"epoch": int(epoch), "metrics": dict(metrics)},
            sort_keys=True,
            allow_nan=False,
        )
        self._handle.write(line + "\n")
        self._handle.flush()
        self.lines_written += 1

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "MetricsStreamWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_metrics_stream(path) -> List[Tuple[int, Dict[str, float]]]:
    """Parse a ``--metrics-stream`` JSONL file into epoch snapshots.

    A malformed line (e.g. the partial tail of a crashed or still-running
    writer) is skipped rather than fatal -- the monitor must be able to
    read a live file.
    """
    snapshots: List[Tuple[int, Dict[str, float]]] = []
    path = Path(path)
    if not path.exists():
        return snapshots
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                epoch = int(payload["epoch"])
                metrics = {
                    str(k): float(v) for k, v in payload["metrics"].items()
                }
            except (ValueError, KeyError, TypeError, AttributeError):
                continue
            snapshots.append((epoch, metrics))
    return snapshots


# -- OpenMetrics text exposition ---------------------------------------- #

_OM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: Histogram quantiles exported in the ``summary`` family.
_OM_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("0.5", 50.0),
    ("0.9", 90.0),
    ("0.99", 99.0),
)


def _om_name(name: str) -> str:
    """A metric name sanitized to the OpenMetrics grammar."""
    return _OM_BAD_CHARS.sub("_", name)


def _om_value(value: float) -> str:
    """A float rendered so that ``float()`` round-trips it exactly."""
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_openmetrics(registry: MetricsRegistry, prefix: str = "") -> str:
    """The registry in OpenMetrics text exposition format.

    Counters become ``counter`` families (``<name>_total`` samples),
    gauges become ``gauge`` families (NaN levels skipped), histograms
    become ``summary`` families (count, sum, and fixed quantiles).
    Families are sorted by exposed name; the output ends with ``# EOF``.
    """
    families: List[Tuple[str, List[str]]] = []
    for name, counter in registry.counters.items():
        exposed = _om_name(prefix + name)
        families.append((
            exposed,
            [
                f"# TYPE {exposed} counter",
                f"{exposed}_total {_om_value(counter.value)}",
            ],
        ))
    for name, gauge in registry.gauges.items():
        if not math.isfinite(gauge.value):
            continue
        exposed = _om_name(prefix + name)
        families.append((
            exposed,
            [
                f"# TYPE {exposed} gauge",
                f"{exposed} {_om_value(gauge.value)}",
            ],
        ))
    for name, hist in registry.histograms.items():
        if not hist.count:
            continue
        exposed = _om_name(prefix + name)
        lines = [
            f"# TYPE {exposed} summary",
            f"{exposed}_count {_om_value(hist.count)}",
            f"{exposed}_sum {_om_value(hist.total)}",
        ]
        for label, q in _OM_QUANTILES:
            quantile = hist.percentile(q)
            if math.isfinite(quantile):
                lines.append(
                    f'{exposed}{{quantile="{label}"}} {_om_value(quantile)}'
                )
        families.append((exposed, lines))
    families.sort(key=lambda item: item[0])
    body = [line for _, lines in families for line in lines]
    body.append("# EOF")
    return "\n".join(body) + "\n"


_OM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)


def parse_openmetrics(text: str) -> Dict[str, Dict[str, object]]:
    """Parse :func:`render_openmetrics` output back into plain dicts.

    Returns ``{"counters": {...}, "gauges": {...}, "summaries": {name:
    {"count": n, "sum": s, "quantiles": {"0.5": v, ...}}}}`` keyed by
    exposed (sanitized) names.  Raises :class:`ValidationError` on a
    line that is neither a comment nor a valid sample.
    """
    kinds: Dict[str, str] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    summaries: Dict[str, Dict[str, object]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                kinds[parts[2]] = parts[3]
            continue
        match = _OM_SAMPLE.match(line)
        if match is None:
            raise ValidationError(f"invalid OpenMetrics sample line: {raw!r}")
        name = match.group("name")
        value = float(match.group("value"))
        labels = match.group("labels") or ""
        base = name
        for suffix in ("_total", "_count", "_sum"):
            if name.endswith(suffix) and kinds.get(name[: -len(suffix)]):
                base = name[: -len(suffix)]
                break
        kind = kinds.get(base) or kinds.get(name)
        if kind == "counter":
            counters[base] = value
        elif kind == "gauge":
            gauges[name] = value
        elif kind == "summary":
            summary = summaries.setdefault(
                base, {"count": 0.0, "sum": 0.0, "quantiles": {}}
            )
            if name.endswith("_count"):
                summary["count"] = value
            elif name.endswith("_sum"):
                summary["sum"] = value
            elif labels.startswith('quantile="'):
                summary["quantiles"][labels[len('quantile="'):-1]] = value
        else:
            raise ValidationError(
                f"sample {name!r} has no preceding # TYPE line"
            )
    return {"counters": counters, "gauges": gauges, "summaries": summaries}
