"""Persistent run ledger: one JSONL record per invocation, plus checks.

Every CLI/experiment invocation can append one :class:`RunRecord` to an
append-only JSONL file (the *ledger*): argv, a workload fingerprint over
the dispatched :class:`~repro.exec.tasks.EvalTask`\\ s, the final
counters/gauges, wall-clock and task-timing percentiles, headline result
digests, and the runtime environment (python/platform/cpu/git).  The
ledger is what makes trajectories visible across invocations: ``repro
runs list|show|diff`` inspect it, and ``repro runs check`` compares the
latest run against a rolling baseline of comparable earlier runs and
flags regressions in results, metrics, or timing.

The module also hosts the per-run *capture* used while a command
executes: :func:`record_digest` collects headline numbers and
:func:`note_tasks` folds dispatched task fingerprints into the workload
hash.  Both are no-ops unless :func:`begin_run_capture` is active, so
instrumented call sites cost nothing in normal runs.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from statistics import median
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.obs.logging_setup import get_logger
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = [
    "RunRecord",
    "RunLedger",
    "RegressionFinding",
    "CheckReport",
    "check_ledger",
    "diff_records",
    "build_record",
    "format_runs_table",
    "runtime_environment",
    "begin_run_capture",
    "end_run_capture",
    "record_digest",
    "note_tasks",
]

logger = get_logger(__name__)

SCHEMA_VERSION = 1

#: Metric namespaces excluded from regression comparison by default:
#: pool/cache bookkeeping depends on topology and warm state, memoization
#: hit/miss splits depend on how tasks were packed onto processes, the
#: ledger/trace counters describe the recording itself, and profiler
#: sample counts / memory watermarks are wall-clock-driven (the
#: attributed self-time regression gate lives in the ``timings`` check
#: instead).  Everything else (detector/trust/search/online counts,
#: result digests, timings) is compared.
DEFAULT_IGNORE_PREFIXES = (
    "exec.",
    "ledger.",
    "trace.",
    "pscheme.report_cache.",
    "pscheme.scores_cache.",
    "search.memo.",
    "profile.",
    "mem.",
)

#: Per-phase self-time paths recorded into ``timings`` (largest first).
MAX_SELF_TIME_PATHS = 8

#: ``self.*`` timings below this baseline median are noise, not phases;
#: the regression check skips them.
SELF_TIMING_FLOOR_SECONDS = 0.05


# --------------------------------------------------------------------- #
# Environment
# --------------------------------------------------------------------- #


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The short git SHA of ``cwd`` (best-effort; None outside a repo)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def runtime_environment() -> Dict[str, object]:
    """Machine/interpreter facts that make run records comparable."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_sha": git_sha(),
    }


# --------------------------------------------------------------------- #
# Per-run capture (digests + workload fingerprints)
# --------------------------------------------------------------------- #


class _RunCapture:
    """Mutable state accumulated while one recorded command executes."""

    def __init__(self) -> None:
        self.digests: Dict[str, float] = {}
        self.task_count = 0
        self._workload_hash = hashlib.blake2b(digest_size=16)

    @property
    def workload(self) -> Dict[str, object]:
        fingerprint = (
            self._workload_hash.hexdigest() if self.task_count else None
        )
        return {"tasks": self.task_count, "fingerprint": fingerprint}


_capture: Optional[_RunCapture] = None


def begin_run_capture() -> _RunCapture:
    """Start collecting digests/workload for the current invocation."""
    global _capture
    _capture = _RunCapture()
    return _capture


def end_run_capture() -> Optional[_RunCapture]:
    """Stop collecting and return the finished capture (None if inactive)."""
    global _capture
    finished, _capture = _capture, None
    return finished


def record_digest(name: str, value: float) -> None:
    """Attach one headline result number to the active run (if any)."""
    if _capture is not None:
        _capture.digests[str(name)] = float(value)


def note_tasks(tasks: Sequence) -> None:
    """Fold dispatched tasks into the active run's workload fingerprint.

    ``tasks`` only need a ``fingerprint`` attribute (duck-typed so this
    module stays import-independent of :mod:`repro.exec`).  No-op unless
    a capture is active -- dispatch hot paths pay one global read.
    """
    if _capture is None or not tasks:
        return
    for task in tasks:
        _capture._workload_hash.update(task.fingerprint.encode("ascii"))
    _capture.task_count += len(tasks)
    get_registry().inc("ledger.tasks_noted", len(tasks))


# --------------------------------------------------------------------- #
# Records
# --------------------------------------------------------------------- #


@dataclass
class RunRecord:
    """One ledger entry: everything needed to compare two invocations."""

    run_id: str
    timestamp: float
    command: str
    argv: List[str]
    status: int = 0
    workload: Dict[str, object] = field(default_factory=dict)
    digests: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    env: Dict[str, object] = field(default_factory=dict)
    #: Alert events (``AlertEvent.as_dict()`` payloads) the run produced.
    alerts: List[Dict[str, object]] = field(default_factory=list)
    schema: int = SCHEMA_VERSION

    def firing_alerts(self) -> List[Dict[str, object]]:
        """The subset of alert events that are ``firing`` transitions."""
        return [
            event
            for event in self.alerts
            if isinstance(event, dict) and event.get("state") == "firing"
        ]

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in payload.items() if k in known})

    @property
    def when(self) -> str:
        """ISO-ish local timestamp for display."""
        return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.timestamp))


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolated ``q``-th percentile of pre-sorted values."""
    if not ordered:
        return float("nan")
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def build_record(
    command: str,
    argv: Sequence[str],
    registry: Optional[MetricsRegistry] = None,
    wall_seconds: float = 0.0,
    status: int = 0,
    capture: Optional[_RunCapture] = None,
    timestamp: Optional[float] = None,
) -> RunRecord:
    """Assemble a :class:`RunRecord` for one finished invocation."""
    registry = registry if registry is not None else get_registry()
    # The run ledger is the repo's one sanctioned wall-clock source: a
    # record's timestamp identifies *when a run happened* and is never an
    # input to any fingerprinted or replayed computation.
    timestamp = time.time() if timestamp is None else float(timestamp)  # lint: ignore[wall-clock]
    snapshot = registry.snapshot()
    timings: Dict[str, float] = {"wall_seconds": float(wall_seconds)}
    task_hist = registry.histograms.get("exec.task_seconds")
    if task_hist is not None and task_hist.count:
        timings.update(
            task_count=float(task_hist.count),
            task_mean=task_hist.mean,
            task_p50=task_hist.percentile(50),
            task_p90=task_hist.percentile(90),
            task_p99=task_hist.percentile(99),
        )
    # Per-phase *self*-time percentiles over the recorded span tree, for
    # the heaviest MAX_SELF_TIME_PATHS paths.  These are what lets
    # ``runs check`` gate on attributed hot-path regressions ("detector
    # spans got slower") instead of only total wall clock.
    if registry.spans:
        from repro.obs.profile import span_self_times

        self_times = span_self_times(registry.spans)
        totals = {path: sum(values) for path, values in self_times.items()}
        heaviest = sorted(totals, key=lambda p: (-totals[p], p))
        for path in heaviest[:MAX_SELF_TIME_PATHS]:
            ordered = sorted(self_times[path])
            timings[f"self.{path}.p50"] = _percentile(ordered, 50.0)
            timings[f"self.{path}.p90"] = _percentile(ordered, 90.0)
    # Alert events ride on the record so ``runs check`` can gate on a
    # run that newly started alerting; the recorder (and its engine)
    # hang off the registry when the CLI wired them up.
    recorder = getattr(registry, "series", None)
    engine = getattr(recorder, "engine", None) if recorder is not None else None
    alerts = (
        [event.as_dict() for event in engine.events]
        if engine is not None
        else []
    )
    identity = hashlib.blake2b(
        json.dumps(
            [timestamp, list(argv), command], sort_keys=True
        ).encode("utf-8"),
        digest_size=6,
    ).hexdigest()
    return RunRecord(
        run_id=identity,
        timestamp=timestamp,
        command=command,
        argv=list(argv),
        status=int(status),
        workload=capture.workload if capture is not None else {},
        digests=dict(capture.digests) if capture is not None else {},
        metrics={
            "counters": dict(snapshot["counters"]),
            "gauges": {
                k: v
                for k, v in snapshot["gauges"].items()
                if not math.isnan(v)
            },
        },
        timings=timings,
        env=runtime_environment(),
        alerts=alerts,
    )


# --------------------------------------------------------------------- #
# The ledger store
# --------------------------------------------------------------------- #


class RunLedger:
    """Append-only JSONL store of :class:`RunRecord`\\ s."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._warned_corrupt = False

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def append(self, record: RunRecord) -> None:
        """Append one record (creates the ledger file on first write)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.as_dict(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        get_registry().inc("ledger.records_appended")

    def records(self) -> Iterator[RunRecord]:
        """Yield every readable record, oldest first; corrupt lines skipped."""
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    if not isinstance(payload, dict):
                        raise ValueError("record line is not a JSON object")
                    record = RunRecord.from_dict(payload)
                except (ValueError, TypeError):
                    get_registry().inc("ledger.corrupt_lines")
                    if not self._warned_corrupt:
                        self._warned_corrupt = True
                        logger.warning(
                            "ledger=%s corrupt line=%d; skipping (counted in "
                            "ledger.corrupt_lines)",
                            self.path,
                            lineno,
                        )
                    continue
                yield record

    def tail(self, n: int) -> List[RunRecord]:
        """The most recent ``n`` records, oldest first."""
        return list(self.records())[-n:]

    def latest(self) -> Optional[RunRecord]:
        """The newest record, or None for an empty/missing ledger."""
        latest = None
        for record in self.records():
            latest = record
        return latest

    def find(self, run_id: str) -> RunRecord:
        """The record whose id starts with ``run_id`` (unique prefix)."""
        matches = [r for r in self.records() if r.run_id.startswith(run_id)]
        if not matches:
            raise ValidationError(f"no run matching id {run_id!r} in {self.path}")
        if len({r.run_id for r in matches}) > 1:
            raise ValidationError(
                f"run id prefix {run_id!r} is ambiguous in {self.path}"
            )
        return matches[-1]


# --------------------------------------------------------------------- #
# Diff + regression check
# --------------------------------------------------------------------- #


def diff_records(a: RunRecord, b: RunRecord) -> List[str]:
    """Human-readable field-level differences between two records."""
    lines: List[str] = []
    if a.command != b.command:
        lines.append(f"command: {a.command} -> {b.command}")
    if a.workload.get("fingerprint") != b.workload.get("fingerprint"):
        lines.append(
            "workload: "
            f"{a.workload.get('fingerprint')} ({a.workload.get('tasks', 0)} tasks)"
            f" -> {b.workload.get('fingerprint')}"
            f" ({b.workload.get('tasks', 0)} tasks)"
        )
    for name in sorted(set(a.digests) | set(b.digests)):
        va, vb = a.digests.get(name), b.digests.get(name)
        if va != vb:
            lines.append(f"digest {name}: {va} -> {vb}")
    counters_a = a.metrics.get("counters", {})
    counters_b = b.metrics.get("counters", {})
    for name in sorted(set(counters_a) | set(counters_b)):
        va, vb = counters_a.get(name, 0.0), counters_b.get(name, 0.0)
        if va != vb:
            lines.append(f"counter {name}: {va:g} -> {vb:g}")
    wa = a.timings.get("wall_seconds", 0.0)
    wb = b.timings.get("wall_seconds", 0.0)
    if wa and wb and wa != wb:
        lines.append(f"wall_seconds: {wa:.3f} -> {wb:.3f} ({wb / wa:.2f}x)")
    return lines


@dataclass
class RegressionFinding:
    """One flagged discrepancy between the latest run and its baseline."""

    kind: str  # "result-digest" | "metric" | "timing" | "status" | "alert"
    name: str
    latest: float
    baseline: float
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.kind}] {self.name}: latest={self.latest:g} "
            f"baseline={self.baseline:g} ({self.detail})"
        )


@dataclass
class CheckReport:
    """Outcome of comparing the latest run against its rolling baseline.

    ``ok`` means no regression was *found*; ``no_baseline`` flags that
    nothing could be compared at all (empty ledger, or zero earlier runs
    with the same command + workload) -- a distinct outcome the CLI maps
    to its own exit code so CI never mistakes "nothing to compare" for
    "checked and clean".
    """

    latest: Optional[RunRecord]
    baseline_size: int
    findings: List[RegressionFinding] = field(default_factory=list)
    notice: Optional[str] = None
    no_baseline: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_text(self) -> str:
        if self.latest is None:
            return self.notice or "ledger is empty"
        header = (
            f"run {self.latest.run_id} ({self.latest.command}, "
            f"{self.latest.when}) vs baseline of {self.baseline_size} run(s)"
        )
        if self.notice:
            return f"{header}\n{self.notice}"
        if not self.findings:
            return f"{header}\nOK: no regressions detected"
        body = "\n".join(f"  {finding}" for finding in self.findings)
        return f"{header}\n{len(self.findings)} regression(s):\n{body}"


def _comparable(latest: RunRecord, record: RunRecord) -> bool:
    if record.status != 0 or record.command != latest.command:
        return False
    latest_fp = latest.workload.get("fingerprint")
    record_fp = record.workload.get("fingerprint")
    if latest_fp is None and record_fp is None:
        # Neither run dispatched engine tasks (e.g. the CLI's legacy
        # serial path), so there is no workload hash to match on --
        # fall back to exact argv identity rather than treating every
        # fingerprint-less run of the command as the same workload.
        return record.argv == latest.argv
    return record_fp == latest_fp


def check_ledger(
    ledger: RunLedger,
    window: int = 5,
    max_timing_ratio: float = 1.5,
    metric_tolerance: float = 0.0,
    digest_tolerance: float = 0.0,
    ignore_prefixes: Tuple[str, ...] = DEFAULT_IGNORE_PREFIXES,
    allow_alerts: bool = False,
) -> CheckReport:
    """Compare the latest run against a rolling baseline of earlier runs.

    The baseline is the up-to-``window`` most recent *successful* earlier
    records with the same command and workload fingerprint.  Flags:

    - **status**: the latest run exited non-zero;
    - **result-digest**: a headline digest moved beyond ``digest_tolerance``
      (absolute) from the baseline median;
    - **metric**: a counter moved beyond ``metric_tolerance`` (relative to
      the baseline median) -- namespaces in ``ignore_prefixes`` are skipped;
    - **timing**: wall-clock exceeded ``max_timing_ratio`` x the baseline
      median;
    - **alert**: the latest run produced firing alert events while every
      baseline run produced none (suppressed by ``allow_alerts`` -- the
      escape hatch for runs *expected* to alert, e.g. attack scenarios).
    """
    records = list(ledger.records())
    if not records:
        return CheckReport(latest=None, baseline_size=0,
                           notice=f"ledger {ledger.path} is empty",
                           no_baseline=True)
    latest = records[-1]
    findings: List[RegressionFinding] = []
    if latest.status != 0:
        findings.append(
            RegressionFinding(
                kind="status",
                name="exit_status",
                latest=float(latest.status),
                baseline=0.0,
                detail="latest run exited non-zero",
            )
        )
    baseline = [r for r in records[:-1] if _comparable(latest, r)][-window:]
    if not baseline:
        return CheckReport(
            latest=latest,
            baseline_size=0,
            findings=findings,
            notice=(
                None
                if findings
                else "NO BASELINE -- no comparable baseline runs yet "
                     "(same command + workload); nothing was checked"
            ),
            no_baseline=True,
        )
    # Result digests: exact by default; any drift is a quality regression.
    for name in sorted(latest.digests):
        history = [r.digests[name] for r in baseline if name in r.digests]
        if not history:
            continue
        base = median(history)
        if abs(latest.digests[name] - base) > digest_tolerance:
            findings.append(
                RegressionFinding(
                    kind="result-digest",
                    name=name,
                    latest=latest.digests[name],
                    baseline=base,
                    detail=f"moved beyond tolerance {digest_tolerance:g}",
                )
            )
    # Counters: stable for a fixed workload (modulo ignored bookkeeping).
    latest_counters = latest.metrics.get("counters", {})
    for name in sorted(latest_counters):
        if name.startswith(ignore_prefixes):
            continue
        history = [
            r.metrics.get("counters", {})[name]
            for r in baseline
            if name in r.metrics.get("counters", {})
        ]
        if not history:
            continue
        base = median(history)
        scale = max(abs(base), 1.0)
        if abs(latest_counters[name] - base) > metric_tolerance * scale:
            findings.append(
                RegressionFinding(
                    kind="metric",
                    name=name,
                    latest=latest_counters[name],
                    baseline=base,
                    detail=f"relative tolerance {metric_tolerance:g}",
                )
            )
    # Timing: latest wall-clock vs the baseline median.
    base_wall = median(
        [r.timings.get("wall_seconds", 0.0) for r in baseline]
    )
    latest_wall = latest.timings.get("wall_seconds", 0.0)
    if base_wall > 0 and latest_wall > max_timing_ratio * base_wall:
        findings.append(
            RegressionFinding(
                kind="timing",
                name="wall_seconds",
                latest=latest_wall,
                baseline=base_wall,
                detail=f"exceeded {max_timing_ratio:g}x baseline median",
            )
        )
    # Newly-firing alerts: a run that starts alerting when its baseline
    # never did is an operational regression even if every counter and
    # digest matched (alert state also depends on the rule file).
    latest_firing = latest.firing_alerts()
    if (
        not allow_alerts
        and latest_firing
        and all(not r.firing_alerts() for r in baseline)
    ):
        rules = sorted({str(event.get("rule")) for event in latest_firing})
        findings.append(
            RegressionFinding(
                kind="alert",
                name="firing_alerts",
                latest=float(len(latest_firing)),
                baseline=0.0,
                detail=(
                    "newly firing vs alert-free baseline: "
                    + ", ".join(rules)
                    + " (pass --allow-alerts if expected)"
                ),
            )
        )
    # Attributed per-phase self-time: same ratio gate, per span path.
    # Records predating these fields simply contribute no history; tiny
    # baselines (below the floor) are scheduling noise, not phases.
    for name in sorted(latest.timings):
        if not name.startswith("self."):
            continue
        history = [
            r.timings[name] for r in baseline if name in r.timings
        ]
        if not history:
            continue
        base = median(history)
        if base < SELF_TIMING_FLOOR_SECONDS:
            continue
        if latest.timings[name] > max_timing_ratio * base:
            findings.append(
                RegressionFinding(
                    kind="timing",
                    name=name,
                    latest=latest.timings[name],
                    baseline=base,
                    detail=(
                        f"attributed self-time exceeded "
                        f"{max_timing_ratio:g}x baseline median"
                    ),
                )
            )
    return CheckReport(latest=latest, baseline_size=len(baseline),
                       findings=findings)


def format_runs_table(records: Sequence[RunRecord]) -> str:
    """Aligned text table of ledger records (newest last)."""
    from repro.analysis.reporting import format_table

    rows = [
        (
            r.run_id,
            r.when,
            r.command,
            r.status,
            r.workload.get("tasks", 0) or 0,
            f"{r.timings.get('wall_seconds', 0.0):.2f}",
            len(r.digests),
        )
        for r in records
    ]
    if not rows:
        return "(ledger is empty)"
    return format_table(
        ["run", "when", "command", "status", "tasks", "wall s", "digests"],
        rows,
        title="Run ledger",
    )
