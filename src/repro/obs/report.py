"""Self-contained HTML / Markdown run reports.

One reviewable artifact per run: ledger records, merged metrics, trace
summaries, ground-truth scorecards, ROC sweeps, per-epoch trust
trajectories, and assumption-drift warnings, rendered into a single
file with **zero external references** -- styling is inline CSS and
every chart is an inline SVG, so the file can be archived as a CI
artifact, attached to a review, or opened years later offline.

The renderer consumes a plain :class:`ReportData` container; the CLI's
``repro-rating report`` subcommand assembles one from a seeded challenge
scenario, and the ``--report-out`` global assembles one from whatever
the invocation's registry collected (:func:`report_from_registry`).
Output format follows the file extension: ``.md`` / ``.markdown`` get
Markdown, everything else HTML.
"""

from __future__ import annotations

import html
import math
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.quality import ConfusionCounts
from repro.obs.registry import MetricsRegistry

__all__ = [
    "ReportData",
    "RocSweep",
    "confusion_from_counters",
    "report_from_registry",
    "render_html",
    "render_markdown",
    "svg_sparkline",
    "svg_roc",
    "write_report",
]

#: Quality counter cells recognized by :func:`confusion_from_counters`.
_CELLS = ("tp", "fp", "fn", "tn")


# --------------------------------------------------------------------- #
# Data model
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class RocSweep:
    """One sensitivity sweep summarized for the report.

    ``points`` rows are ``(parameter_value, false_alarm_rate, recall)``.
    """

    parameter: str
    points: Tuple[Tuple[float, float, float], ...]
    auc: float


@dataclass
class ReportData:
    """Everything one run report can show.  All sections are optional:
    empty collections render as nothing."""

    title: str = "repro run report"
    generated: str = ""
    environment: Mapping[str, str] = field(default_factory=dict)
    #: ``(run_id, when, command, status, wall_seconds)`` rows.
    ledger_rows: Sequence[Tuple[str, str, str, int, float]] = ()
    #: Summed per-detector confusion counts (e.g. from
    #: :func:`repro.obs.quality.aggregate_confusions`).
    confusions: Mapping[str, ConfusionCounts] = field(default_factory=dict)
    #: Per-submission scorecard rows:
    #: ``(label, archetype, detected, latency_days, bias_at_detection)``.
    scorecard_rows: Sequence[
        Tuple[str, str, bool, Optional[float], Optional[float]]
    ] = ()
    roc: Optional[RocSweep] = None
    #: Per-epoch mean-trust series keyed by group label.
    trust_trajectories: Mapping[str, Sequence[float]] = field(
        default_factory=dict
    )
    drift_warnings: Sequence[str] = ()
    #: Alert state transitions:
    #: ``(epoch, rule, state, value, threshold, severity, latency)`` rows.
    alert_rows: Sequence[
        Tuple[int, str, str, float, float, str, int]
    ] = ()
    #: Recorded per-epoch metric series keyed by metric name (values in
    #: epoch order) -- rendered as sparklines.
    series_sparklines: Mapping[str, Sequence[float]] = field(
        default_factory=dict
    )
    counters: Mapping[str, float] = field(default_factory=dict)
    #: ``(name, count, mean, p50, max)`` histogram summary rows.
    histogram_rows: Sequence[Tuple[str, int, float, float, float]] = ()
    trace_summary: Optional[str] = None
    notes: Sequence[str] = ()

    def __post_init__(self) -> None:
        if not self.generated:
            self.generated = time.strftime("%Y-%m-%d %H:%M:%S")


def confusion_from_counters(
    counters: Mapping[str, float],
) -> Dict[str, ConfusionCounts]:
    """Reassemble per-detector confusion counts from ``quality.*`` counters.

    Inverse of :func:`repro.obs.quality.emit_scorecard`'s counter naming
    (``quality.<detector>.<cell>``), so any collected registry -- live,
    merged from capsules, or read back from a ledger record -- can feed
    the report's scorecard table.
    """
    cells: Dict[str, Dict[str, int]] = {}
    for name, value in counters.items():
        parts = name.split(".")
        if len(parts) != 3 or parts[0] != "quality" or parts[2] not in _CELLS:
            continue
        cells.setdefault(parts[1], {})[parts[2]] = int(value)
    return {
        detector: ConfusionCounts(**{c: row.get(c, 0) for c in _CELLS})
        for detector, row in cells.items()
    }


def report_from_registry(
    registry: MetricsRegistry,
    title: str = "repro run report",
    environment: Optional[Mapping[str, str]] = None,
    ledger_rows: Sequence[Tuple[str, str, str, int, float]] = (),
    trace_summary: Optional[str] = None,
    notes: Sequence[str] = (),
) -> ReportData:
    """Assemble a :class:`ReportData` from one collected registry."""
    snapshot = registry.snapshot()
    counters = {
        name: value
        for name, value in snapshot["counters"].items()
        if value
    }
    histogram_rows = []
    for name, hist in sorted(registry.histograms.items()):
        summary = hist.summary()
        histogram_rows.append(
            (name, int(summary["count"]), summary["mean"], summary["p50"],
             summary["max"]),
        )
    alert_rows: List[Tuple[int, str, str, float, float, str, int]] = []
    series_sparklines: Dict[str, List[float]] = {}
    recorder = registry.series
    if recorder is not None:
        engine = recorder.engine
        if engine is not None:
            alert_rows = [
                (
                    event.epoch,
                    event.rule,
                    event.state,
                    event.value,
                    event.threshold,
                    event.severity,
                    event.latency_epochs,
                )
                for event in engine.events
            ]
        series_sparklines = _headline_series(recorder)
    return ReportData(
        title=title,
        environment=dict(environment or {}),
        ledger_rows=ledger_rows,
        confusions=confusion_from_counters(counters),
        alert_rows=alert_rows,
        series_sparklines=series_sparklines,
        counters=counters,
        histogram_rows=histogram_rows,
        trace_summary=trace_summary,
        notes=notes,
    )


#: Series namespaces the report charts first (operational headliners).
_SERIES_PRIORITY = ("drift.", "quality.", "online.", "alert.")

#: At most this many sparkline figures render in the series section.
MAX_SERIES_SPARKLINES = 12


def _headline_series(recorder) -> Dict[str, List[float]]:
    """The most report-worthy recorded series (>= 2 points, capped).

    Operational namespaces (:data:`_SERIES_PRIORITY`) chart first,
    alphabetically within a namespace, then everything else -- at most
    :data:`MAX_SERIES_SPARKLINES` series total.
    """

    def rank(name: str) -> Tuple[int, str]:
        for index, prefix in enumerate(_SERIES_PRIORITY):
            if name.startswith(prefix):
                return (index, name)
        return (len(_SERIES_PRIORITY), name)

    picked: Dict[str, List[float]] = {}
    for name in sorted(recorder.names(), key=rank):
        points = recorder.series(name)
        if len(points) < 2:
            continue
        picked[name] = [value for _, value in points]
        if len(picked) >= MAX_SERIES_SPARKLINES:
            break
    return picked


# --------------------------------------------------------------------- #
# Inline SVG charts
# --------------------------------------------------------------------- #


def _finite(values: Sequence[float]) -> List[float]:
    return [float(v) for v in values if math.isfinite(float(v))]


def svg_sparkline(
    values: Sequence[float],
    width: int = 220,
    height: int = 44,
    stroke: str = "#2563eb",
) -> str:
    """A minimal inline-SVG polyline for one series (no axes)."""
    clean = _finite(values)
    if len(clean) < 2:
        return (
            f'<svg width="{width}" height="{height}" role="img">'
            f'<text x="4" y="{height - 6}" class="dim">(not enough data)'
            f"</text></svg>"
        )
    lo, hi = min(clean), max(clean)
    span = (hi - lo) or 1.0
    pad = 3.0
    step = (width - 2 * pad) / (len(clean) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (v - lo) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(clean)
    )
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<polyline points="{points}" fill="none" stroke="{stroke}" '
        f'stroke-width="1.8" stroke-linejoin="round"/></svg>'
    )


def svg_roc(
    points: Sequence[Tuple[float, float]],
    width: int = 240,
    height: int = 240,
) -> str:
    """An inline-SVG ROC curve: unit box, chance diagonal, curve, dots.

    ``points`` are ``(false_alarm_rate, recall)`` pairs; the curve is
    anchored at (0,0) and (1,1) like :func:`repro.obs.quality.roc_auc`.
    """
    clean = sorted(
        {(0.0, 0.0), (1.0, 1.0)}
        | {
            (float(x), float(y))
            for x, y in points
            if math.isfinite(float(x)) and math.isfinite(float(y))
        }
    )
    pad = 14.0
    inner_w, inner_h = width - 2 * pad, height - 2 * pad

    def sx(x: float) -> float:
        return pad + x * inner_w

    def sy(y: float) -> float:
        return height - pad - y * inner_h

    poly = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in clean)
    dots = "".join(
        f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" fill="#dc2626"/>'
        for x, y in points
        if math.isfinite(float(x)) and math.isfinite(float(y))
    )
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<rect x="{pad}" y="{pad}" width="{inner_w}" height="{inner_h}" '
        f'fill="none" stroke="#9ca3af"/>'
        f'<line x1="{sx(0):.1f}" y1="{sy(0):.1f}" x2="{sx(1):.1f}" '
        f'y2="{sy(1):.1f}" stroke="#d1d5db" stroke-dasharray="4 3"/>'
        f'<polyline points="{poly}" fill="none" stroke="#2563eb" '
        f'stroke-width="2"/>'
        f"{dots}"
        f'<text x="{width / 2:.0f}" y="{height - 1}" text-anchor="middle" '
        f'class="dim">false alarms</text>'
        f'<text x="8" y="{height / 2:.0f}" class="dim" '
        f'transform="rotate(-90 8 {height / 2:.0f})" '
        f'text-anchor="middle">recall</text>'
        f"</svg>"
    )


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #

_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; color: #1f2937;
       max-width: 60rem; margin: 2rem auto; padding: 0 1rem; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #2563eb;
     padding-bottom: .3rem; }
h2 { font-size: 1.1rem; margin-top: 1.6rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #d1d5db; padding: .25rem .6rem;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #f3f4f6; }
td:first-child, th:first-child { text-align: left; }
pre { background: #f3f4f6; padding: .6rem; overflow-x: auto; }
.dim { color: #6b7280; font-size: 11px; fill: #6b7280; }
.warn { color: #b45309; }
.ok { color: #15803d; }
figure { display: inline-block; margin: .4rem 1.2rem .4rem 0; }
figcaption { font-size: 12px; color: #6b7280; text-align: center; }
"""


def _fmt(value, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value):
        return "-"
    if value and abs(value) < 10 ** -digits:
        return f"{value:.1e}"
    return f"{value:,.{digits}f}".rstrip("0").rstrip(".") or "0"


def _html_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = []
    for row in rows:
        cells = "".join(
            "<td>{}</td>".format(
                html.escape(cell) if isinstance(cell, str) else _fmt(cell)
            )
            for cell in row
        )
        body.append(f"<tr>{cells}</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )


def _confusion_rows(
    confusions: Mapping[str, ConfusionCounts],
) -> List[Sequence]:
    rows: List[Sequence] = []
    for name, counts in confusions.items():
        rows.append(
            (
                name,
                counts.tp,
                counts.fp,
                counts.fn,
                counts.tn,
                counts.precision,
                counts.recall,
                counts.false_alarm_rate,
            )
        )
    return rows


_CONFUSION_HEADERS = (
    "detector", "tp", "fp", "fn", "tn",
    "precision", "recall", "false alarms",
)

_ALERT_HEADERS = (
    "epoch", "rule", "state", "value", "threshold", "severity",
    "latency (epochs)",
)


def render_html(data: ReportData) -> str:
    """Render one report as a single self-contained HTML document."""
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(data.title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(data.title)}</h1>",
        f'<p class="dim">generated {html.escape(data.generated)}</p>',
    ]
    if data.notes:
        parts.append(
            "<ul>"
            + "".join(f"<li>{html.escape(note)}</li>" for note in data.notes)
            + "</ul>"
        )
    if data.environment:
        parts.append("<h2>Environment</h2>")
        parts.append(
            _html_table(
                ("key", "value"),
                sorted((k, str(v)) for k, v in data.environment.items()),
            )
        )
    if data.ledger_rows:
        parts.append("<h2>Run ledger</h2>")
        parts.append(
            _html_table(
                ("run", "when", "command", "status", "wall s"),
                data.ledger_rows,
            )
        )
    if data.confusions:
        parts.append("<h2>Detection scorecard</h2>")
        parts.append(
            '<p class="dim">Confusion counts joined against ground-truth '
            "unfair labels; per-detector rows attribute via provenance "
            "bits, so one rating can count for several detectors.</p>"
        )
        parts.append(
            _html_table(_CONFUSION_HEADERS, _confusion_rows(data.confusions))
        )
    if data.scorecard_rows:
        parts.append("<h2>Per-submission detection</h2>")
        parts.append(
            _html_table(
                ("submission", "archetype", "detected", "latency (days)",
                 "bias at detection"),
                data.scorecard_rows,
            )
        )
    if data.roc is not None:
        parts.append(
            f"<h2>ROC sweep: {html.escape(data.roc.parameter)}</h2>"
        )
        auc = _fmt(data.roc.auc)
        parts.append(
            "<figure>"
            + svg_roc([(fa, rc) for _, fa, rc in data.roc.points])
            + f"<figcaption>AUC {auc}</figcaption></figure>"
        )
        parts.append(
            _html_table(
                (data.roc.parameter, "false alarms", "recall"),
                data.roc.points,
            )
        )
    if data.trust_trajectories:
        parts.append("<h2>Trust trajectories</h2>")
        parts.append(
            '<p class="dim">Mean beta trust per 30-day epoch '
            "(Procedure 1).</p>"
        )
        for label, series in data.trust_trajectories.items():
            parts.append(
                "<figure>"
                + svg_sparkline(series)
                + f"<figcaption>{html.escape(label)}"
                + (f" ({_fmt(series[-1])})" if len(series) else "")
                + "</figcaption></figure>"
            )
    parts.append("<h2>Assumption drift</h2>")
    if data.drift_warnings:
        parts.append(
            f'<p class="warn">{len(data.drift_warnings)} warning(s):</p><ul>'
            + "".join(
                f'<li class="warn">{html.escape(str(w))}</li>'
                for w in data.drift_warnings
            )
            + "</ul>"
        )
    else:
        parts.append(
            '<p class="ok">no assumption-drift warnings: the fair-rating '
            "regime held.</p>"
        )
    if data.alert_rows:
        firing = sum(1 for row in data.alert_rows if row[2] == "firing")
        parts.append("<h2>Alerts</h2>")
        parts.append(
            f'<p class="{"warn" if firing else "ok"}">'
            f"{len(data.alert_rows)} alert state transition(s), "
            f"{firing} firing; latency is epochs between first breach "
            "and the alarm.</p>"
        )
        parts.append(_html_table(_ALERT_HEADERS, data.alert_rows))
    if data.series_sparklines:
        parts.append("<h2>Telemetry series</h2>")
        parts.append(
            '<p class="dim">Per-epoch metric snapshots (epoch index on '
            "the x axis).</p>"
        )
        for label, series in data.series_sparklines.items():
            parts.append(
                "<figure>"
                + svg_sparkline(series)
                + f"<figcaption>{html.escape(label)}"
                + (f" ({_fmt(series[-1])})" if len(series) else "")
                + "</figcaption></figure>"
            )
    if data.counters:
        parts.append("<h2>Counters</h2>")
        parts.append(
            _html_table(
                ("counter", "value"), sorted(data.counters.items())
            )
        )
    if data.histogram_rows:
        parts.append("<h2>Histograms</h2>")
        parts.append(
            _html_table(
                ("histogram", "count", "mean", "p50", "max"),
                data.histogram_rows,
            )
        )
    if data.trace_summary:
        parts.append("<h2>Trace summary</h2>")
        parts.append(f"<pre>{html.escape(data.trace_summary)}</pre>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def _md_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    def cell(value) -> str:
        return value if isinstance(value, str) else _fmt(value)

    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(lines)


def render_markdown(data: ReportData) -> str:
    """Render one report as Markdown (charts become tables)."""
    parts: List[str] = [
        f"# {data.title}",
        "",
        f"_generated {data.generated}_",
    ]
    if data.notes:
        parts.append("")
        parts.extend(f"- {note}" for note in data.notes)
    if data.environment:
        parts += ["", "## Environment", "", _md_table(
            ("key", "value"),
            sorted((k, str(v)) for k, v in data.environment.items()),
        )]
    if data.ledger_rows:
        parts += ["", "## Run ledger", "", _md_table(
            ("run", "when", "command", "status", "wall s"), data.ledger_rows
        )]
    if data.confusions:
        parts += ["", "## Detection scorecard", "", _md_table(
            _CONFUSION_HEADERS, _confusion_rows(data.confusions)
        )]
    if data.scorecard_rows:
        parts += ["", "## Per-submission detection", "", _md_table(
            ("submission", "archetype", "detected", "latency (days)",
             "bias at detection"),
            data.scorecard_rows,
        )]
    if data.roc is not None:
        parts += [
            "", f"## ROC sweep: {data.roc.parameter}",
            "", f"AUC: {_fmt(data.roc.auc)}", "",
            _md_table(
                (data.roc.parameter, "false alarms", "recall"),
                data.roc.points,
            ),
        ]
    if data.trust_trajectories:
        parts += ["", "## Trust trajectories (mean per epoch)", ""]
        for label, series in data.trust_trajectories.items():
            parts.append(
                f"- {label}: " + ", ".join(_fmt(v) for v in series)
            )
    parts += ["", "## Assumption drift", ""]
    if data.drift_warnings:
        parts.extend(f"- {w}" for w in data.drift_warnings)
    else:
        parts.append("no assumption-drift warnings.")
    if data.alert_rows:
        parts += ["", "## Alerts", "", _md_table(
            _ALERT_HEADERS, data.alert_rows
        )]
    if data.series_sparklines:
        parts += ["", "## Telemetry series (per epoch)", ""]
        for label, series in data.series_sparklines.items():
            parts.append(
                f"- {label}: " + ", ".join(_fmt(v) for v in series)
            )
    if data.counters:
        parts += ["", "## Counters", "", _md_table(
            ("counter", "value"), sorted(data.counters.items())
        )]
    if data.histogram_rows:
        parts += ["", "## Histograms", "", _md_table(
            ("histogram", "count", "mean", "p50", "max"), data.histogram_rows
        )]
    if data.trace_summary:
        parts += ["", "## Trace summary", "", "```",
                  data.trace_summary, "```"]
    return "\n".join(parts) + "\n"


def write_report(data: ReportData, path: os.PathLike) -> str:
    """Write ``data`` to ``path``; format follows the extension.

    Returns the format written (``"markdown"`` or ``"html"``).
    """
    kind = (
        "markdown"
        if str(path).lower().endswith((".md", ".markdown"))
        else "html"
    )
    text = render_markdown(data) if kind == "markdown" else render_html(data)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return kind
