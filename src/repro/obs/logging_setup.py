"""Structured logging setup for the ``repro`` package.

Every module logs through a child of the ``repro`` logger
(``get_logger(__name__)``).  Nothing is emitted until
:func:`setup_logging` installs a handler -- the library stays silent by
default, like a library should.  The formatter is line-oriented
``key=value`` structured text, greppable and cheap.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

__all__ = ["setup_logging", "get_logger", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s level=%(levelname)s logger=%(name)s %(message)s"

#: Handler installed by setup_logging, remembered for idempotent re-setup.
_installed_handler: Optional[logging.Handler] = None


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``name`` may be a module ``__name__`` (already rooted at ``repro``) or
    a bare suffix, which is attached under the root logger.
    """
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def setup_logging(
    level: str = "WARNING", stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Configure the ``repro`` logger tree and return its root.

    Idempotent: calling again replaces the previously installed handler
    (so tests and repeated CLI invocations never stack handlers).  The
    ``repro`` tree does not propagate to the Python root logger, keeping
    host applications' logging untouched.
    """
    try:
        numeric = getattr(logging, level.upper())
        if not isinstance(numeric, int):
            raise AttributeError(level)
    except AttributeError:
        raise ValueError(f"unknown log level {level!r}") from None
    global _installed_handler
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    if _installed_handler is not None:
        logger.removeHandler(_installed_handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    logger.addHandler(handler)
    logger.setLevel(numeric)
    logger.propagate = False
    _installed_handler = handler
    return logger
