"""Declarative alerting over recorded metric series.

The paper's detectors are change detectors over rating streams; this
module applies the same shape to the system's own health telemetry.
Operators declare :class:`AlertRule` conditions in a TOML or JSON file
-- no code -- and :class:`AlertEngine` evaluates them against a
:class:`~repro.obs.series.TimeSeriesRecorder` at every epoch close,
with firing/resolved hysteresis so a single noisy epoch neither fires
nor clears an alarm.

Three condition kinds cover the attack signatures the related work
cares about:

- ``threshold``: the latest value breaches ``op value`` -- single-epoch
  spikes (a concentrated ballot burst blowing up ``drift.dispersion``).
- ``rate_of_change``: the one-epoch delta breaches -- a counter that
  suddenly starts moving (``drift.warnings`` incrementing at all).
- ``burn_rate``: the delta over a rolling ``window`` of epochs breaches
  -- slow drift that never spikes, which is exactly how low-rate and
  unorganized attacks (arXiv:2604.13049, arXiv:1610.04086) surface.

Every state transition is an :class:`AlertEvent` carrying the detection
latency in epochs (epochs elapsed between the first breach and the
alarm actually firing, i.e. the hysteresis cost).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = [
    "DEFAULT_RULES_PATH",
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "load_rules",
]

#: The ruleset shipped with the library: drift/quality conditions that
#: stay silent on seeded fair worlds and fire on attack scenarios.
DEFAULT_RULES_PATH = Path(__file__).with_name("alert_rules") / "default.toml"

_KINDS = ("threshold", "rate_of_change", "burn_rate")
_OPS = (">", ">=", "<", "<=")
_SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert condition over a single metric series.

    ``for_epochs`` consecutive breaching epochs are required before the
    alert fires; ``resolve_epochs`` consecutive clear epochs before a
    firing alert resolves (both default 1: no hysteresis).
    """

    name: str
    metric: str
    kind: str = "threshold"
    op: str = ">"
    value: float = 0.0
    window: int = 1
    for_epochs: int = 1
    resolve_epochs: int = 1
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("alert rule needs a non-empty name")
        if not self.metric:
            raise ValidationError(f"rule {self.name!r} needs a metric")
        if self.kind not in _KINDS:
            raise ValidationError(
                f"rule {self.name!r}: kind must be one of {_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.op not in _OPS:
            raise ValidationError(
                f"rule {self.name!r}: op must be one of {_OPS}, got {self.op!r}"
            )
        if self.severity not in _SEVERITIES:
            raise ValidationError(
                f"rule {self.name!r}: severity must be one of {_SEVERITIES}, "
                f"got {self.severity!r}"
            )
        for attr in ("window", "for_epochs", "resolve_epochs"):
            if getattr(self, attr) < 1:
                raise ValidationError(
                    f"rule {self.name!r}: {attr} must be >= 1, "
                    f"got {getattr(self, attr)}"
                )
        object.__setattr__(self, "value", float(self.value))

    def breached(self, signal: float) -> bool:
        """Does ``signal`` violate this rule's comparison?"""
        if self.op == ">":
            return signal > self.value
        if self.op == ">=":
            return signal >= self.value
        if self.op == "<":
            return signal < self.value
        return signal <= self.value

    def signal(self, recorder, epoch: int) -> Optional[float]:
        """The value this rule compares at ``epoch`` (None: no data yet).

        ``threshold`` uses the latest recorded value; ``rate_of_change``
        the delta from the previous epoch; ``burn_rate`` the delta over
        the rolling ``window``.  A metric with no point at or before
        ``epoch`` yields None (the rule cannot breach); a missing
        *earlier* point in a delta reads as 0.0, so a counter's first
        appearance registers as a positive delta.
        """
        points = recorder.series(self.metric)
        now = _value_at(points, epoch)
        if now is None:
            return None
        if self.kind == "threshold":
            return now
        lag = 1 if self.kind == "rate_of_change" else self.window
        then = _value_at(points, epoch - lag)
        return now - (then if then is not None else 0.0)


def _value_at(points: Sequence[Tuple[int, float]], epoch: int) -> Optional[float]:
    """The most recent value at or before ``epoch`` (None when absent)."""
    value = None
    for point_epoch, point_value in points:
        if point_epoch > epoch:
            break
        value = point_value
    return value


@dataclass(frozen=True)
class AlertEvent:
    """One alert state transition (``firing`` or ``resolved``)."""

    rule: str
    metric: str
    state: str
    epoch: int
    value: float
    threshold: float
    severity: str = "warning"
    latency_epochs: int = 0
    description: str = ""

    def as_dict(self) -> Dict[str, object]:
        """A JSON-serializable dump (ledger/report payload)."""
        return {
            "rule": self.rule,
            "metric": self.metric,
            "state": self.state,
            "epoch": self.epoch,
            "value": self.value,
            "threshold": self.threshold,
            "severity": self.severity,
            "latency_epochs": self.latency_epochs,
            "description": self.description,
        }


@dataclass
class _RuleState:
    """Per-rule hysteresis bookkeeping."""

    breach_streak: int = 0
    clear_streak: int = 0
    firing: bool = False
    first_breach_epoch: Optional[int] = None


class AlertEngine:
    """Evaluates a ruleset against a recorder at each epoch close.

    State transitions append to :attr:`events` and emit ``alert.*``
    metrics into the evaluating registry; :meth:`evaluate` returns just
    the events the given epoch produced.
    """

    def __init__(
        self,
        rules: Sequence[AlertRule],
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        names = [rule.name for rule in rules]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValidationError(
                f"duplicate alert rule names: {sorted(duplicates)}"
            )
        self.rules: Tuple[AlertRule, ...] = tuple(rules)
        self._registry = registry
        self._states: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules
        }
        self.events: List[AlertEvent] = []

    # -- inspection ----------------------------------------------------- #

    def firing(self) -> List[str]:
        """Names of the rules currently in the firing state."""
        return [
            rule.name
            for rule in self.rules
            if self._states[rule.name].firing
        ]

    def state_of(self, rule_name: str) -> str:
        """``firing`` or ``ok`` for one rule (by name)."""
        state = self._states.get(rule_name)
        if state is None:
            raise ValidationError(f"unknown alert rule: {rule_name!r}")
        return "firing" if state.firing else "ok"

    # -- evaluation ----------------------------------------------------- #

    def evaluate(
        self,
        recorder,
        epoch: int,
        registry: Optional[MetricsRegistry] = None,
    ) -> List[AlertEvent]:
        """Evaluate every rule at ``epoch``; return this epoch's events."""
        registry = registry or self._registry or get_registry()
        epoch = int(epoch)
        produced: List[AlertEvent] = []
        for rule in self.rules:
            state = self._states[rule.name]
            signal = rule.signal(recorder, epoch)
            breached = signal is not None and rule.breached(signal)
            if breached:
                state.clear_streak = 0
                state.breach_streak += 1
                if state.first_breach_epoch is None:
                    state.first_breach_epoch = epoch
                if not state.firing and state.breach_streak >= rule.for_epochs:
                    state.firing = True
                    produced.append(
                        AlertEvent(
                            rule=rule.name,
                            metric=rule.metric,
                            state="firing",
                            epoch=epoch,
                            value=float(signal),
                            threshold=rule.value,
                            severity=rule.severity,
                            latency_epochs=epoch - state.first_breach_epoch,
                            description=rule.description,
                        )
                    )
            else:
                state.breach_streak = 0
                if state.firing:
                    state.clear_streak += 1
                    if state.clear_streak >= rule.resolve_epochs:
                        state.firing = False
                        state.clear_streak = 0
                        state.first_breach_epoch = None
                        produced.append(
                            AlertEvent(
                                rule=rule.name,
                                metric=rule.metric,
                                state="resolved",
                                epoch=epoch,
                                value=float(signal) if signal is not None else 0.0,
                                threshold=rule.value,
                                severity=rule.severity,
                                description=rule.description,
                            )
                        )
                else:
                    state.first_breach_epoch = None
        self.events.extend(produced)
        registry.inc("alert.evaluations", float(len(self.rules)))
        for event in produced:
            registry.inc("alert.events")
            if event.state == "firing":
                registry.inc("alert.firing")
                registry.observe(
                    "alert.latency_epochs", float(event.latency_epochs)
                )
            else:
                registry.inc("alert.resolved")
        registry.set_gauge("alert.active", float(len(self.firing())))
        return produced


# -- rule-file loading --------------------------------------------------- #

_RULE_FIELDS = frozenset(
    {
        "name",
        "metric",
        "kind",
        "op",
        "value",
        "window",
        "for_epochs",
        "resolve_epochs",
        "severity",
        "description",
    }
)


def load_rules(path) -> List[AlertRule]:
    """Parse an alert-rule file (``.toml`` or ``.json``) into rules.

    TOML files declare ``[[rule]]`` array-of-tables entries; JSON files
    a ``{"rules": [...]}`` object.  Unknown keys, duplicate names, and
    invalid field values raise :class:`ValidationError` with the file
    named, so ``repro alerts --check`` gives actionable errors.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValidationError(f"cannot read alert rules {path}: {exc}") from exc
    try:
        if path.suffix.lower() == ".json":
            payload = json.loads(text)
        else:
            payload = _load_toml(text)
    except ValidationError as exc:
        raise ValidationError(f"{path}: {exc}") from exc
    except ValueError as exc:
        raise ValidationError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise ValidationError(f"{path}: top level must be a table/object")
    raw_rules = payload.get("rules", payload.get("rule", []))
    if not isinstance(raw_rules, list):
        raise ValidationError(f"{path}: 'rules' must be an array")
    rules: List[AlertRule] = []
    for index, raw in enumerate(raw_rules):
        if not isinstance(raw, Mapping):
            raise ValidationError(f"{path}: rule #{index + 1} must be a table")
        unknown = set(raw) - _RULE_FIELDS
        if unknown:
            raise ValidationError(
                f"{path}: rule #{index + 1} has unknown keys {sorted(unknown)}"
            )
        try:
            rules.append(AlertRule(**dict(raw)))
        except (TypeError, ValidationError) as exc:
            raise ValidationError(f"{path}: rule #{index + 1}: {exc}") from exc
    names = [rule.name for rule in rules]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ValidationError(
            f"{path}: duplicate rule names {sorted(duplicates)}"
        )
    return rules


def _load_toml(text: str) -> Dict[str, object]:
    """Parse TOML via the stdlib when present, else the mini parser.

    ``tomllib`` landed in Python 3.11; on 3.9/3.10 (still supported by
    this package, no third-party deps allowed) rule files fall back to
    :func:`_parse_mini_toml`, which covers the subset the rule grammar
    needs: ``[[rule]]`` array-of-tables with scalar assignments.
    """
    try:
        import tomllib
    except ImportError:
        return _parse_mini_toml(text)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ValidationError(f"invalid TOML: {exc}") from exc


def _parse_mini_toml(text: str) -> Dict[str, object]:
    """A minimal TOML subset parser for alert-rule files.

    Supports comments, ``[[name]]`` array-of-tables headers, and
    ``key = value`` with basic-string, integer, float, and boolean
    values -- exactly the grammar :func:`load_rules` documents.
    """
    payload: Dict[str, object] = {}
    current: Optional[Dict[str, object]] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            table_name = line[2:-2].strip()
            if not table_name:
                raise ValidationError(f"line {lineno}: empty table name")
            current = {}
            payload.setdefault(table_name, []).append(current)
            continue
        if "=" not in line or current is None:
            raise ValidationError(
                f"line {lineno}: expected 'key = value' inside [[rule]]"
            )
        key, _, value = line.partition("=")
        current[key.strip()] = _mini_toml_value(value.strip(), lineno)
    return payload


def _mini_toml_value(token: str, lineno: int) -> object:
    """One scalar TOML value (string, bool, int, or float)."""
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return token[1:-1]
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        raise ValidationError(
            f"line {lineno}: unsupported value {token!r}"
        ) from None
