"""Process-local metrics: counters, gauges, histograms, and the registry.

Design goals (mirroring what production rating pipelines need without
taking on any dependency):

- **Default-on, near-free.**  Instrumented code paths always call into the
  active registry, but the default registry is :data:`NULL_REGISTRY`,
  whose methods are no-ops -- the cost of uncollected telemetry is one
  attribute lookup and one no-op call.  Collection starts when a real
  :class:`MetricsRegistry` is installed (``set_registry`` /
  ``use_registry``) or injected into a component.
- **Injectable.**  Every instrumented component (``PScheme``,
  ``JointDetector``, ``TrustManager``, ``OnlineRatingSystem``,
  ``heuristic_region_search``) accepts a ``registry`` argument; ``None``
  means "whatever is globally active at call time", so tests can observe
  a single component without global state.
- **Summaries, not samples.**  Histograms keep running summary statistics
  (count/sum/min/max) plus a bounded reservoir of recent observations for
  percentiles, so memory stays O(1) per metric under heavy traffic.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = float("nan")

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class Histogram:
    """Summary statistics over a stream of observations.

    Keeps exact count/sum/min/max and a bounded deque of the most recent
    observations (``reservoir`` entries) from which percentiles are
    estimated -- recency-biased by construction, which is what operational
    dashboards want.
    """

    __slots__ = ("count", "total", "min", "max", "_recent")

    RESERVOIR = 512

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._recent: Deque[float] = deque(maxlen=self.RESERVOIR)

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._recent.append(value)

    def state(self) -> Tuple[int, float, float, float, List[float]]:
        """The full pickleable state (count, sum, min, max, recent)."""
        return (self.count, self.total, self.min, self.max, list(self._recent))

    def merge_state(
        self,
        count: int,
        total: float,
        min_value: float,
        max_value: float,
        recent: Sequence[float],
    ) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Summary statistics combine exactly; the bounded reservoir is
        concatenated (recency bias is preserved because merges happen in
        dispatch order and the deque keeps the most recent entries).
        """
        if not count:
            return
        self.count += int(count)
        self.total += float(total)
        if min_value < self.min:
            self.min = min_value
        if max_value > self.max:
            self.max = max_value
        self._recent.extend(recent)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (NaN when empty)."""
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (0..100) over recent observations."""
        if not self._recent:
            return float("nan")
        ordered = sorted(self._recent)
        rank = (len(ordered) - 1) * (q / 100.0)
        lo = int(math.floor(rank))
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        """The exported summary dict."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """A collecting registry: named counters, gauges, histograms, spans.

    Metric handles are created lazily on first use and cached, so hot
    paths may either hold a handle (``registry.counter(name)``) or use the
    string-keyed convenience methods (``registry.inc(name)``).
    """

    #: Instrumented code may consult this to skip building expensive
    #: telemetry (e.g. per-rater loops) when nothing is collecting.
    enabled = True

    #: Completed span records kept for inspection (bounded).
    MAX_SPANS = 4096

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.spans: List[object] = []
        #: Aggregated profiler samples: collapsed-stack key -> sample
        #: count (see :mod:`repro.obs.profile` for the key format).
        self.profile: Dict[str, float] = {}
        #: Optional attached :class:`~repro.obs.series.TimeSeriesRecorder`
        #: snapshotting this registry at epoch boundaries.
        self.series = None

    # -- handle creation ----------------------------------------------- #

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        try:
            return self.counters[name]
        except KeyError:
            with self._lock:
                return self.counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        try:
            return self.gauges[name]
        except KeyError:
            with self._lock:
                return self.gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        try:
            return self.histograms[name]
        except KeyError:
            with self._lock:
                return self.histograms.setdefault(name, Histogram())

    # -- string-keyed convenience API ---------------------------------- #

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Observe ``value`` into histogram ``name``."""
        self.histogram(name).observe(value)

    def record_span(self, record) -> None:
        """Fold one completed span into the registry."""
        self.observe(f"span.{record.path}.seconds", record.duration)
        if len(self.spans) < self.MAX_SPANS:
            self.spans.append(record)

    def adopt_span(self, record) -> None:
        """Append an already-recorded span (e.g. merged from a worker).

        Unlike :meth:`record_span` this does *not* observe the duration
        histogram -- the producing registry already did, and histogram
        merges carry that over -- it only re-homes the record into this
        registry's span list (bounded by :data:`MAX_SPANS`).
        """
        if len(self.spans) < self.MAX_SPANS:
            self.spans.append(record)

    def add_profile_samples(self, samples: Dict[str, float]) -> None:
        """Fold profiler sample counts into the registry's profile.

        Counts add per collapsed-stack key, so merging worker profiles in
        task order is commutative and deterministic.
        """
        with self._lock:
            for key, count in samples.items():
                self.profile[key] = self.profile.get(key, 0.0) + float(count)

    def attach_series(self, recorder) -> None:
        """Attach a time-series recorder to snapshot this registry.

        Components that close epochs (``OnlineRatingSystem``, the CLI
        report pipeline) look here for the recorder to feed, so a single
        attachment turns scalar telemetry into series everywhere.
        """
        self.series = recorder

    # -- inspection ----------------------------------------------------- #

    def counter_value(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        counter = self.counters.get(name)
        return counter.value if counter is not None else 0.0

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-dict view of everything collected (JSON-ready)."""
        return {
            "counters": {k: v.value for k, v in sorted(self.counters.items())},
            "gauges": {k: v.value for k, v in sorted(self.gauges.items())},
            "histograms": {
                k: v.summary() for k, v in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every metric and recorded span (and any recorded series)."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
            self.spans.clear()
            self.profile.clear()
            if self.series is not None:
                self.series.clear()


class NullRegistry(MetricsRegistry):
    """The no-op registry active when no sink is configured.

    Every recording method returns immediately; handle creation returns
    shared throwaway objects so accidental handle caching stays harmless.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = Counter()
        self._null_gauge = Gauge()
        self._null_histogram = Histogram()

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        return self._null_histogram

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def record_span(self, record) -> None:
        pass

    def adopt_span(self, record) -> None:
        pass

    def add_profile_samples(self, samples: Dict[str, float]) -> None:
        pass

    def attach_series(self, recorder) -> None:
        pass

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The shared no-op sink; identity-compared by fast paths.
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently active registry (:data:`NULL_REGISTRY` by default)."""
    return _active


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` globally (``None`` -> disable collection).

    Returns the previously active registry so callers can restore it.
    """
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry]) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` as the global sink."""
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)
