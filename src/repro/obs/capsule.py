"""Cross-process telemetry: snapshot a registry, ship it, merge it.

Worker processes in :class:`~repro.exec.parallel.ParallelEvaluator`
collect metrics and spans into a *fresh* per-task registry; without this
module everything they record would die with the worker.  A
:class:`TelemetryCapsule` is the pickleable snapshot of such a registry
-- counters, gauges, full histogram state (including the percentile
reservoir), and completed span records -- that travels back to the
parent alongside the task result and is folded into the parent registry:

- counters add, gauges last-write-win, histograms merge exactly
  (count/sum/min/max combine; reservoirs concatenate in dispatch order);
- span records are **re-parented** under the dispatching span: their
  dotted paths are prefixed with the parent path, depths are shifted,
  and each record is stamped with the producing pid so trace exporters
  can draw per-worker lanes.

Because the serial (``workers=0``) execution path captures tasks through
the exact same capsule mechanism, a sweep exports the same merged
telemetry no matter how it was dispatched.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.obs.profile import reparent_profile_key
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecord

__all__ = ["TelemetryCapsule"]

#: ``(count, total, min, max, recent)`` -- the pickleable histogram state.
HistogramState = Tuple[int, float, float, float, List[float]]


@dataclass
class TelemetryCapsule:
    """A pickleable snapshot of one registry's collected telemetry."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramState] = field(default_factory=dict)
    spans: List[SpanRecord] = field(default_factory=list)
    profile: Dict[str, float] = field(default_factory=dict)
    #: Attached recorder state (:meth:`TimeSeriesRecorder.state`), or
    #: None when the source registry recorded no series points.
    series: Optional[Dict[str, object]] = None
    pid: int = 0

    @classmethod
    def capture(cls, registry: MetricsRegistry) -> "TelemetryCapsule":
        """Snapshot everything ``registry`` collected, stamped with our pid."""
        recorder = registry.series
        return cls(
            counters={k: v.value for k, v in registry.counters.items()},
            gauges={k: v.value for k, v in registry.gauges.items()},
            histograms={k: v.state() for k, v in registry.histograms.items()},
            spans=list(registry.spans),
            profile=dict(registry.profile),
            series=(
                recorder.state()
                if recorder is not None and not recorder.empty
                else None
            ),
            pid=os.getpid(),
        )

    @property
    def empty(self) -> bool:
        """Whether the capsule carries no telemetry at all."""
        return not (
            self.counters
            or self.gauges
            or self.histograms
            or self.spans
            or self.profile
            or self.series
        )

    def merge_into(
        self,
        registry: MetricsRegistry,
        parent_path: str = "",
        base_depth: int = 0,
    ) -> None:
        """Fold this capsule into ``registry``.

        ``parent_path``/``base_depth`` re-parent the shipped span records
        under the dispatching span (metric *names* are left untouched, so
        per-stage histograms keep their stable identities).  Merging into
        a disabled registry (e.g. :data:`~repro.obs.registry.NULL_REGISTRY`)
        is a no-op.
        """
        if not registry.enabled:
            return
        if self.series and registry.series is not None:
            # Series points union by epoch (max on conflict), so folding
            # worker capsules in any order yields identical series.
            registry.series.merge_state(self.series)
        for name, value in self.counters.items():
            if value:
                registry.counter(name).inc(value)
        for name, value in self.gauges.items():
            registry.gauge(name).set(value)
        for name, state in self.histograms.items():
            registry.histogram(name).merge_state(*state)
        if self.profile:
            # Sample keys re-parent exactly like span paths do, so a
            # worker's "span:exec.task...." samples fold under the
            # dispatching "exec.map" span in the merged profile; counts
            # add per key, making the merge order-insensitive.
            registry.add_profile_samples(
                {
                    reparent_profile_key(key, parent_path): count
                    for key, count in self.profile.items()
                }
            )
        for record in self.spans:
            path = f"{parent_path}.{record.path}" if parent_path else record.path
            registry.adopt_span(
                replace(
                    record,
                    path=path,
                    depth=record.depth + base_depth,
                    pid=record.pid or self.pid,
                )
            )
