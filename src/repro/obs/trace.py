"""Chrome/Perfetto ``trace_event`` export of the recorded span tree.

Every completed :class:`~repro.obs.spans.SpanRecord` -- including worker
records merged back through :class:`~repro.obs.capsule.TelemetryCapsule`
-- becomes one complete ("X") event in the Trace Event Format that
``chrome://tracing`` and https://ui.perfetto.dev load natively.  Records
keep their producing pid, so a parallel sweep renders one lane per pool
worker next to the parent's dispatch span; timestamps are normalized to
the earliest span so the trace starts at zero.  (Span start times come
from ``perf_counter``, which on Linux is the system-wide monotonic clock
-- comparable across forked workers.)

Final counter values are exported as one trailing counter ("C") event
per metric namespace so quality counters are visible alongside timing.
When the registry carries profiler samples (:mod:`repro.obs.profile`),
they render as an extra per-process lane of synthetic complete events
-- one slice per collapsed stack, sized by sampled self time -- so the
flamegraph and the span tree sit side by side in one Perfetto view.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.obs.profile import PROFILE_TID, profile_trace_events, registry_hz
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecord

__all__ = [
    "trace_events",
    "write_trace",
    "read_trace",
    "summarize_trace",
]

#: Microseconds per second -- trace event timestamps are in µs.
_US = 1e6


def trace_events(
    registry: MetricsRegistry, base_pid: Optional[int] = None
) -> List[Dict[str, object]]:
    """The registry's spans (plus final counters) as trace events."""
    base_pid = os.getpid() if base_pid is None else int(base_pid)
    spans: Sequence[SpanRecord] = list(registry.spans)
    origin = min((record.start for record in spans), default=0.0)
    events: List[Dict[str, object]] = []
    pids = {base_pid}
    for record in spans:
        pid = record.pid or base_pid
        pids.add(pid)
        args: Dict[str, object] = {"path": record.path, "depth": record.depth}
        args.update(record.annotations)
        events.append(
            {
                "name": record.name,
                "cat": record.path.split(".", 1)[0] if record.path else "span",
                "ph": "X",
                "ts": (record.start - origin) * _US,
                "dur": record.duration * _US,
                "pid": pid,
                "tid": 0,
                "args": args,
            }
        )
    counters = {
        name: value
        for name, value in registry.snapshot()["counters"].items()
        if value
    }
    if counters:
        last_ts = max((float(e["ts"]) + float(e["dur"]) for e in events),
                      default=0.0)
        events.append(
            {
                "name": "final counters",
                "ph": "C",
                "ts": last_ts,
                "pid": base_pid,
                "tid": 0,
                "args": counters,
            }
        )
    profile_events: List[Dict[str, object]] = []
    if registry.profile:
        profile_events = profile_trace_events(
            registry.profile,
            hz=registry_hz(registry),
            base_pid=base_pid,
        )
    metadata: List[Dict[str, object]] = []
    for pid in sorted(pids):
        label = "main" if pid == base_pid else f"worker {pid}"
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro {label}"},
            }
        )
    if profile_events:
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": base_pid,
                "tid": PROFILE_TID,
                "args": {"name": "profiler samples"},
            }
        )
    return metadata + events + profile_events


def write_trace(
    registry: MetricsRegistry,
    path: os.PathLike,
    base_pid: Optional[int] = None,
) -> int:
    """Write the registry's trace to ``path``; returns the event count."""
    events = trace_events(registry, base_pid=base_pid)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs.trace"},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    registry.inc("trace.events_written", len(events))
    return len(events)


def read_trace(path: os.PathLike) -> Dict[str, object]:
    """Load and structurally validate a trace JSON file.

    Raises :class:`~repro.errors.ValidationError` on anything Perfetto's
    JSON importer would reject: a missing ``traceEvents`` list, events
    without ``ph``/``name``, or complete events without numeric
    ``ts``/``dur``/``pid``.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except ValueError as exc:
        raise ValidationError(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(payload, dict) or not isinstance(
        payload.get("traceEvents"), list
    ):
        raise ValidationError(
            f"{path}: expected an object with a 'traceEvents' list"
        )
    for index, event in enumerate(payload["traceEvents"]):
        if not isinstance(event, dict):
            raise ValidationError(f"{path}: event #{index} is not an object")
        if "ph" not in event or "name" not in event:
            raise ValidationError(
                f"{path}: event #{index} lacks required 'ph'/'name' fields"
            )
        if event["ph"] == "X":
            for key in ("ts", "dur", "pid"):
                if not isinstance(event.get(key), (int, float)):
                    raise ValidationError(
                        f"{path}: complete event #{index} has non-numeric "
                        f"{key!r}"
                    )
    return payload


def _event_self_times(complete: Sequence[Dict[str, object]]) -> Dict[int, float]:
    """Exclusive (self) duration per event id, by wall-clock containment.

    Within each (pid, tid) lane, events sort by start time and a nested
    event's duration is subtracted from its innermost enclosing parent,
    so nested spans stop double-counting in the summary.
    """
    self_dur = {id(e): float(e["dur"]) for e in complete}
    lanes: Dict[Tuple[object, object], List[Dict[str, object]]] = {}
    for event in complete:
        lanes.setdefault((event["pid"], event.get("tid", 0)), []).append(event)
    for lane_events in lanes.values():
        lane_events.sort(key=lambda e: (float(e["ts"]), -float(e["dur"])))
        stack: List[Tuple[float, float, int]] = []
        for event in lane_events:
            ts, dur = float(event["ts"]), float(event["dur"])
            while stack and ts >= stack[-1][0] + stack[-1][1] - 1e-9:
                stack.pop()
            if stack:
                self_dur[stack[-1][2]] -= dur
            stack.append((ts, dur, id(event)))
    return self_dur


def summarize_trace(payload: Dict[str, object], top: int = 10) -> str:
    """A text digest of a loaded trace (lanes, phases, cache, longest spans)."""
    events = payload["traceEvents"]
    complete = [e for e in events if e.get("ph") == "X"]
    phases: Dict[str, int] = {}
    for event in events:
        phases[event["ph"]] = phases.get(event["ph"], 0) + 1
    lanes = sorted({e["pid"] for e in complete})
    lines = [
        f"{len(events)} events "
        f"({', '.join(f'{n} {ph!r}' for ph, n in sorted(phases.items()))})",
        f"process lanes: {', '.join(str(p) for p in lanes) or '(none)'}",
    ]
    # MP-cache effectiveness, from the final-counters event.  Hit rate
    # is hits / (hits + misses): a fully warm run dispatches zero tasks
    # but still answers every lookup from the cache, so task counts
    # would wrongly report 0.
    counters: Dict[str, float] = {}
    for event in events:
        if event.get("ph") == "C" and event.get("name") == "final counters":
            counters.update(event.get("args", {}))
    hits = float(counters.get("exec.cache.hits", 0))
    lookups = hits + float(counters.get("exec.cache.misses", 0))
    if lookups:
        cache_line = (
            f"MP cache: {hits:g}/{lookups:g} lookups hit "
            f"({hits / lookups:.0%})"
        )
        corrupt = float(counters.get("exec.cache.corrupt", 0))
        if corrupt:
            cache_line += (
                f"; {corrupt:g} corrupt entries treated as misses"
            )
        lines.append(cache_line)
    span_events = [e for e in complete if e.get("cat") != "profile"]
    profile_events = [e for e in complete if e.get("cat") == "profile"]
    if span_events:
        self_dur = _event_self_times(span_events)
        span_end = max(float(e["ts"]) + float(e["dur"]) for e in span_events)
        lines.append(f"trace span: {span_end / 1e3:.2f} ms")
        lines.append(
            f"longest {min(top, len(span_events))} spans (total / self):"
        )
        longest = sorted(span_events, key=lambda e: -float(e["dur"]))[:top]
        for event in longest:
            path = event.get("args", {}).get("path", event["name"])
            lines.append(
                f"  {float(event['dur']) / 1e3:10.2f} ms"
                f" / {self_dur[id(event)] / 1e3:10.2f} ms self"
                f"  pid={event['pid']}  {path}"
            )
        by_path: Dict[str, float] = {}
        for event in span_events:
            path = str(event.get("args", {}).get("path", event["name"]))
            by_path[path] = by_path.get(path, 0.0) + self_dur[id(event)]
        lines.append(f"top {min(top, len(by_path))} self-time paths:")
        ranked = sorted(by_path.items(), key=lambda item: (-item[1], item[0]))
        for path, self_us in ranked[:top]:
            lines.append(f"  {self_us / 1e3:10.2f} ms self  {path}")
    if profile_events:
        sampled_seconds = sum(float(e["dur"]) for e in profile_events) / 1e6
        lines.append(
            f"profiler lane: {len(profile_events)} sampled stacks, "
            f"{sampled_seconds:.2f} s of samples"
        )
    return "\n".join(lines)
