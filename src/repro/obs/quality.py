"""Ground-truth detection scorecards -- the paper's own evaluation axis.

The observability stack can say how *fast* a run was; this module says
how *well* it detected.  A :class:`Scorecard` joins one
:class:`~repro.detectors.base.DetectionReport`'s per-rating provenance
bitmask against the ground-truth unfair labels carried by the stream
(every synthetic rating knows whether an attack generator produced it;
known attacker rater ids can be joined in as a fallback for data that
lost its flags in serialization).  The join yields

- a **joint confusion matrix** (tp/fp/fn/tn) for the P-scheme's unioned
  verdict, plus one per contributing path/sub-detector, attributed via
  the ``PROV_*`` provenance bits;
- the **detection latency**: days (and 30-day MP epochs) from the first
  unfair rating to the first flagged rating at or after it;
- the **bias at detection**: how far the attack had already moved the
  product's mean when the first flag landed -- the damage an online
  deployment would have published before reacting.

:func:`emit_scorecard` folds a scorecard into the active metrics
registry under the ``quality.*`` namespace, so scorecards travel through
:class:`~repro.obs.capsule.TelemetryCapsule` like any other counter and
are bit-identical between serial and hermetic parallel runs.

Sweep-level summaries: :func:`roc_auc` turns the (false-alarm, recall)
pairs of a sensitivity sweep into a trapezoidal AUC with the
conventional (0,0)/(1,1) anchors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.detectors.base import PROVENANCE_FLAGS, DetectionReport
from repro.errors import ValidationError
from repro.obs.registry import MetricsRegistry
from repro.types import RatingStream

__all__ = [
    "ConfusionCounts",
    "Scorecard",
    "score_detection",
    "aggregate_confusions",
    "emit_scorecard",
    "roc_auc",
]

#: The paper's MP metric is defined over 30-day periods (Section III).
EPOCH_DAYS = 30.0

#: Scorecard rows, in display order: the unioned verdict first, then the
#: provenance flags (paths before sub-detectors, as in PROVENANCE_FLAGS).
DETECTOR_ORDER: Tuple[str, ...] = ("joint",) + tuple(PROVENANCE_FLAGS)


@dataclass(frozen=True)
class ConfusionCounts:
    """One 2x2 confusion matrix: detector verdict vs ground truth."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    @property
    def total(self) -> int:
        """Ratings judged."""
        return self.tp + self.fp + self.fn + self.tn

    @property
    def precision(self) -> float:
        """Flagged ratings that really were unfair (NaN when none flagged)."""
        flagged = self.tp + self.fp
        return self.tp / flagged if flagged else float("nan")

    @property
    def recall(self) -> float:
        """Unfair ratings caught (NaN when the stream had none)."""
        unfair = self.tp + self.fn
        return self.tp / unfair if unfair else float("nan")

    @property
    def false_alarm_rate(self) -> float:
        """Fair ratings wrongly flagged (NaN when the stream had none)."""
        fair = self.fp + self.tn
        return self.fp / fair if fair else float("nan")

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            fn=self.fn + other.fn,
            tn=self.tn + other.tn,
        )

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form (JSON-friendly)."""
        return {"tp": self.tp, "fp": self.fp, "fn": self.fn, "tn": self.tn}

    @classmethod
    def from_masks(
        cls, predicted: np.ndarray, truth: np.ndarray
    ) -> "ConfusionCounts":
        """Count the four cells from aligned boolean masks."""
        predicted = np.asarray(predicted, dtype=bool)
        truth = np.asarray(truth, dtype=bool)
        if predicted.shape != truth.shape:
            raise ValidationError(
                f"predicted mask shape {predicted.shape} does not match "
                f"truth shape {truth.shape}"
            )
        return cls(
            tp=int((predicted & truth).sum()),
            fp=int((predicted & ~truth).sum()),
            fn=int((~predicted & truth).sum()),
            tn=int((~predicted & ~truth).sum()),
        )


@dataclass(frozen=True)
class Scorecard:
    """Detection quality of one product stream against ground truth.

    Attributes
    ----------
    product_id:
        The judged product.
    joint:
        Confusion counts for the unioned P-scheme verdict
        (``DetectionReport.suspicious``).
    per_detector:
        Confusion counts attributed per provenance flag (``path1``,
        ``path2``, ``MC``, ...): a rating counts toward a detector's
        tp/fp when that detector's bit is set in its provenance, and
        toward its fn when the rating is unfair but the bit is unset.
    detection_latency_days / detection_latency_epochs:
        Days (MP epochs) from the first unfair rating to the first flag
        at or after it; ``None`` when the stream has no unfair ratings
        or the attack was never flagged.
    bias_at_detection:
        Attacked-mean minus fair-mean over the ratings up to (and
        including) the first flag -- the published damage when detection
        reacted.  ``None`` whenever the latency is.
    """

    product_id: str
    joint: ConfusionCounts
    per_detector: Mapping[str, ConfusionCounts] = field(default_factory=dict)
    detection_latency_days: Optional[float] = None
    bias_at_detection: Optional[float] = None

    @property
    def detected(self) -> bool:
        """Whether any truly unfair rating was flagged."""
        return self.joint.tp > 0

    @property
    def attacked(self) -> bool:
        """Whether the stream contained any unfair ratings at all."""
        return (self.joint.tp + self.joint.fn) > 0

    @property
    def detection_latency_epochs(self) -> Optional[float]:
        """The latency in the paper's 30-day MP epochs."""
        if self.detection_latency_days is None:
            return None
        return self.detection_latency_days / EPOCH_DAYS

    def counts(self) -> List[Tuple[str, ConfusionCounts]]:
        """``(name, counts)`` rows in :data:`DETECTOR_ORDER`."""
        rows: List[Tuple[str, ConfusionCounts]] = [("joint", self.joint)]
        for name in PROVENANCE_FLAGS:
            rows.append((name, self.per_detector.get(name, ConfusionCounts())))
        return rows


def _ground_truth(
    stream: RatingStream, attacker_ids: Optional[Iterable[str]]
) -> np.ndarray:
    """Per-rating unfair labels: generator flags, plus attacker-id joins."""
    truth = np.asarray(stream.unfair, dtype=bool).copy()
    if attacker_ids:
        ids = set(attacker_ids)
        truth |= np.fromiter(
            (rater in ids for rater in stream.rater_ids),
            dtype=bool,
            count=len(stream),
        )
    return truth


def score_detection(
    stream: RatingStream,
    report: DetectionReport,
    attacker_ids: Optional[Iterable[str]] = None,
) -> Scorecard:
    """Join one detection report against the stream's ground truth.

    ``attacker_ids`` optionally supplements the stream's ``unfair``
    flags: ratings from these rater ids count as unfair even when the
    flags were lost (e.g. a CSV round-trip without the unfair column).
    """
    n = len(stream)
    if report.suspicious.shape != (n,):
        raise ValidationError(
            f"report for {report.product_id!r} covers "
            f"{report.suspicious.shape[0]} ratings, stream has {n}"
        )
    truth = _ground_truth(stream, attacker_ids)
    suspicious = np.asarray(report.suspicious, dtype=bool)
    provenance = np.asarray(report.provenance, dtype=np.uint8)
    per_detector = {
        name: ConfusionCounts.from_masks((provenance & bit) != 0, truth)
        for name, bit in PROVENANCE_FLAGS.items()
    }
    latency = bias = None
    if truth.any() and (suspicious & truth).any():
        first_unfair = float(stream.times[truth][0])
        flagged_after = suspicious & (stream.times >= first_unfair)
        first_flag = float(stream.times[flagged_after][0])
        latency = first_flag - first_unfair
        upto = stream.times <= first_flag
        fair_upto = upto & ~truth
        if fair_upto.any():
            bias = float(
                stream.values[upto].mean() - stream.values[fair_upto].mean()
            )
    return Scorecard(
        product_id=stream.product_id,
        joint=ConfusionCounts.from_masks(suspicious, truth),
        per_detector=per_detector,
        detection_latency_days=latency,
        bias_at_detection=bias,
    )


def aggregate_confusions(
    cards: Sequence[Scorecard],
) -> Dict[str, ConfusionCounts]:
    """Sum the confusion counts of many scorecards, per detector row."""
    totals: Dict[str, ConfusionCounts] = {
        name: ConfusionCounts() for name in DETECTOR_ORDER
    }
    for card in cards:
        for name, counts in card.counts():
            totals[name] = totals[name] + counts
    return totals


def emit_scorecard(card: Scorecard, registry: MetricsRegistry) -> None:
    """Fold one scorecard into ``registry`` under ``quality.*``.

    Counter names are ``quality.<detector>.{tp,fp,fn,tn}`` (detector
    rows as in :data:`DETECTOR_ORDER`); latency and bias observations
    land in the ``quality.detection_latency_days`` /
    ``quality.detection_latency_epochs`` / ``quality.bias_at_detection``
    histograms.  ``quality.scorecards`` counts emissions and
    ``quality.detected_streams`` the ones where an attack was caught.
    """
    if not registry.enabled:
        return
    registry.inc("quality.scorecards")
    if card.detected:
        registry.inc("quality.detected_streams")
    for name, counts in card.counts():
        for cell, value in counts.as_dict().items():
            registry.inc(f"quality.{name}.{cell}", value)
    if card.detection_latency_days is not None:
        registry.observe(
            "quality.detection_latency_days", card.detection_latency_days
        )
        registry.observe(
            "quality.detection_latency_epochs",
            card.detection_latency_days / EPOCH_DAYS,
        )
    if card.bias_at_detection is not None:
        registry.observe("quality.bias_at_detection", card.bias_at_detection)


def roc_auc(points: Sequence[Tuple[float, float]]) -> float:
    """Trapezoidal AUC over ``(false_alarm_rate, recall)`` pairs.

    The observed operating points are anchored with the conventional
    ``(0, 0)`` and ``(1, 1)`` corners, sorted by false-alarm rate, and
    integrated with the trapezoid rule.  NaN pairs (e.g. a sweep value
    whose fixtures held no unfair ratings) are dropped.
    """
    clean = [
        (float(fpr), float(tpr))
        for fpr, tpr in points
        if np.isfinite(fpr) and np.isfinite(tpr)
    ]
    if not clean:
        return float("nan")
    anchored = sorted({(0.0, 0.0), (1.0, 1.0), *clean})
    xs = np.asarray([p[0] for p in anchored])
    ys = np.asarray([p[1] for p in anchored])
    # np.trapz was removed in NumPy 2; fall back for older NumPy.
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(ys, xs))
