"""Assumption drift monitors for the fair-rating regime.

The paper's detectors (and this reproduction's calibrated thresholds)
assume the *fair* traffic stays inside a stated regime: arrivals are
Poisson-like, rating values hover around a stable mean (~4 on the 0-5
scale), and the residuals of the fair model are white (the ME detector's
AR fit depends on it).  Nothing in the pipeline used to say when a
deployment leaves that regime -- the standard silent-failure mode of
beta-filter trust models (Whitby et al.; TRAVOS).

Three dependency-free statistics, checked per product per epoch:

- **arrival dispersion** -- the Fano factor (variance/mean) of daily
  rating counts; ~1 for a Poisson process, >> 1 for bursty arrivals,
  << 1 for suspiciously regular (scripted) arrivals;
- **residual whiteness** -- a Ljung-Box Q statistic over the de-meaned
  rating values, against a Wilson-Hilferty chi-squared quantile;
- **mean drift** -- the epoch's mean rating value vs the calibrated fair
  mean.

Violations become structured :class:`DriftWarning` records, log lines,
and ``drift.*`` counters in the active metrics registry.  The
:class:`~repro.online.system.OnlineRatingSystem` runs a
:class:`DriftMonitor` on every epoch close and publishes the warnings on
the :class:`~repro.online.system.EpochReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.obs.logging_setup import get_logger
from repro.obs.registry import MetricsRegistry, get_registry
from repro.types import RatingDataset, RatingStream

__all__ = [
    "DriftMonitorConfig",
    "DriftWarning",
    "DriftMonitor",
    "arrival_dispersion",
    "ljung_box_statistic",
    "chi2_quantile",
]

logger = get_logger(__name__)


def arrival_dispersion(counts: np.ndarray) -> float:
    """Fano factor (variance/mean) of per-day arrival counts.

    ~1 under a homogeneous Poisson process; NaN when the window is empty.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.size == 0 or counts.sum() == 0:
        return float("nan")
    mean = counts.mean()
    return float(counts.var() / mean)


def ljung_box_statistic(values: np.ndarray, lags: int) -> float:
    """Ljung-Box Q over the de-meaned series (H0: white noise).

    ``Q = n (n + 2) * sum_k rho_k^2 / (n - k)`` for ``k = 1..lags``;
    compare against a chi-squared quantile with ``lags`` degrees of
    freedom.  NaN when the series is shorter than ``lags + 1`` or has
    zero variance (a constant series carries no whiteness evidence).
    """
    values = np.asarray(values, dtype=float)
    n = values.size
    if lags < 1:
        raise ValidationError(f"lags must be >= 1, got {lags}")
    if n <= lags + 1:
        return float("nan")
    centered = values - values.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        return float("nan")
    q = 0.0
    for k in range(1, lags + 1):
        rho = float(np.dot(centered[:-k], centered[k:])) / denom
        q += rho * rho / (n - k)
    return float(n * (n + 2) * q)


def chi2_quantile(df: int, p: float = 0.99) -> float:
    """Wilson-Hilferty approximation of the chi-squared quantile.

    Accurate to a few percent for ``df >= 2`` -- plenty for a monitor
    threshold -- and keeps the module dependency-free (no scipy).
    """
    if df < 1:
        raise ValidationError(f"df must be >= 1, got {df}")
    if not 0.0 < p < 1.0:
        raise ValidationError(f"p must be in (0, 1), got {p}")
    # Standard-normal quantile via Acklam's rational approximation
    # (central region only; monitor thresholds live well inside it).
    z = _normal_quantile(p)
    return float(df * (1.0 - 2.0 / (9.0 * df) + z * np.sqrt(2.0 / (9.0 * df))) ** 3)


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's approximation)."""
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = np.sqrt(-2.0 * np.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > p_high:
        return -_normal_quantile(1.0 - p)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


@dataclass(frozen=True)
class DriftMonitorConfig:
    """Tunables of the assumption drift monitors.

    The default bounds were calibrated so the seeded fair worlds (weekly
    cycle, slow trend, Poisson arrivals) stay silent while the canonical
    attack archetypes (bursts, scripted evenly-spaced arrivals, strong
    bias) trip at least one monitor; see ``tests/unit/test_drift.py``.
    """

    #: Minimum evidence before any monitor speaks.
    min_ratings: int = 20
    min_days: float = 7.0
    #: Fano-factor bounds for per-day arrival counts.  The fair worlds'
    #: weekly cycle already overdisperses mildly (factor ~1.2-1.8), so
    #: the high bound sits well above Poisson's 1.
    dispersion_low: float = 0.25
    dispersion_high: float = 3.0
    #: Ljung-Box lags; threshold is the chi-squared ``whiteness_p``
    #: quantile with ``lags`` degrees of freedom.
    whiteness_lags: int = 8
    whiteness_p: float = 0.999
    #: Absolute drift of the epoch mean vs the calibrated fair mean.
    mean_drift_threshold: float = 0.75
    #: Calibrated fair mean; ``None`` calibrates from data
    #: (:meth:`DriftMonitor.calibrate`, or self-calibration on first use).
    fair_mean: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_ratings < 1:
            raise ValidationError("min_ratings must be >= 1")
        if self.dispersion_low >= self.dispersion_high:
            raise ValidationError(
                "dispersion_low must be below dispersion_high"
            )
        if self.mean_drift_threshold <= 0:
            raise ValidationError("mean_drift_threshold must be > 0")

    @property
    def whiteness_threshold(self) -> float:
        """The Ljung-Box rejection threshold implied by lags + p."""
        return chi2_quantile(self.whiteness_lags, self.whiteness_p)


@dataclass(frozen=True)
class DriftWarning:
    """One assumption violation observed in one product's epoch window."""

    kind: str  #: "arrival-dispersion" | "residual-whiteness" | "mean-drift"
    product_id: str
    statistic: float
    threshold: float
    window: Tuple[float, float]
    detail: str

    def __str__(self) -> str:
        lo, hi = self.window
        return (
            f"[{self.kind}] {self.product_id} days [{lo:.1f}, {hi:.1f}): "
            f"statistic={self.statistic:.3f} threshold={self.threshold:.3f} "
            f"({self.detail})"
        )


class DriftMonitor:
    """Checks product streams against the fair-regime assumptions.

    ``registry`` injects a metrics sink; ``None`` uses the globally
    active registry at call time.  Counters: ``drift.checks`` (monitored
    product-epochs), ``drift.warnings`` (total violations), and
    ``drift.<kind>.violations`` per monitor kind.
    """

    #: Counter-friendly names per warning kind.
    _KINDS = {
        "arrival-dispersion": "dispersion",
        "residual-whiteness": "whiteness",
        "mean-drift": "mean",
    }

    def __init__(
        self,
        config: Optional[DriftMonitorConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else DriftMonitorConfig()
        self._registry = registry
        self._fair_mean: Optional[float] = self.config.fair_mean

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics sink in effect (injected, else the global one)."""
        return self._registry if self._registry is not None else get_registry()

    @property
    def fair_mean(self) -> Optional[float]:
        """The calibrated fair mean (``None`` until calibrated)."""
        return self._fair_mean

    def calibrate(self, dataset: RatingDataset) -> None:
        """Set the fair mean from known-fair data (e.g. the history)."""
        values = [
            float(stream.values.sum())
            for stream in dataset.streams()
            if len(stream)
        ]
        counts = sum(len(stream) for stream in dataset.streams())
        if counts:
            self._fair_mean = sum(values) / counts

    # ------------------------------------------------------------------ #

    def check_stream(
        self, stream: RatingStream, start: float, stop: float
    ) -> List[DriftWarning]:
        """All assumption violations for one product over ``[start, stop)``."""
        window = stream.between(start, stop)
        if len(window) < self.config.min_ratings:
            return []
        if self._fair_mean is None:
            # Self-calibrate on first evidence: the first monitored window
            # defines the regime, so drift is measured relative to it.
            self._fair_mean = float(window.values.mean())
        warnings: List[DriftWarning] = []
        span = (float(start), float(stop))
        if stop - start >= self.config.min_days:
            _, counts = window.daily_counts(start, stop)
            fano = arrival_dispersion(counts)
            if np.isfinite(fano) and not (
                self.config.dispersion_low <= fano <= self.config.dispersion_high
            ):
                side = "bursty" if fano > self.config.dispersion_high else "scripted"
                bound = (
                    self.config.dispersion_high
                    if fano > self.config.dispersion_high
                    else self.config.dispersion_low
                )
                warnings.append(
                    DriftWarning(
                        kind="arrival-dispersion",
                        product_id=stream.product_id,
                        statistic=fano,
                        threshold=bound,
                        window=span,
                        detail=f"daily-count Fano factor looks {side}, not Poisson",
                    )
                )
        q = ljung_box_statistic(window.values, self.config.whiteness_lags)
        threshold = self.config.whiteness_threshold
        if np.isfinite(q) and q > threshold:
            warnings.append(
                DriftWarning(
                    kind="residual-whiteness",
                    product_id=stream.product_id,
                    statistic=q,
                    threshold=threshold,
                    window=span,
                    detail=(
                        f"Ljung-Box Q over {self.config.whiteness_lags} lags "
                        f"rejects white residuals"
                    ),
                )
            )
        drift = abs(float(window.values.mean()) - self._fair_mean)
        if drift > self.config.mean_drift_threshold:
            warnings.append(
                DriftWarning(
                    kind="mean-drift",
                    product_id=stream.product_id,
                    statistic=drift,
                    threshold=self.config.mean_drift_threshold,
                    window=span,
                    detail=(
                        f"epoch mean {window.values.mean():.2f} vs calibrated "
                        f"fair mean {self._fair_mean:.2f}"
                    ),
                )
            )
        self._record(warnings)
        return warnings

    def check_epoch(
        self, dataset: RatingDataset, start: float, stop: float
    ) -> List[DriftWarning]:
        """Check every product stream of ``dataset`` over one epoch window."""
        warnings: List[DriftWarning] = []
        for product_id in dataset:
            warnings.extend(self.check_stream(dataset[product_id], start, stop))
        return warnings

    def _record(self, warnings: List[DriftWarning]) -> None:
        registry = self.registry
        registry.inc("drift.checks")
        if not warnings:
            return
        registry.inc("drift.warnings", len(warnings))
        for warning in warnings:
            registry.inc(f"drift.{self._KINDS[warning.kind]}.violations")
            logger.warning("%s", warning)
