"""Splitting a rating stream into segments at indicator-curve peaks.

The MC-suspiciousness rule (paper Section IV-B.3) divides all ratings into
segments *separated by the peaks on the mean change indicator curve*, then
judges each segment by its mean shift and its raters' average trust.  The
ARC-suspiciousness rule (Section IV-C.3) does the same over arrival-rate
peaks.  This module provides the segmentation primitives shared by both.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.signal.peaks import Peak

__all__ = ["segment_bounds_from_peaks", "segment_labels"]


def segment_bounds_from_peaks(
    n: int, peaks: Sequence[Peak]
) -> List[Tuple[int, int]]:
    """Half-open index segments ``[start, stop)`` separated by peak indices.

    ``n`` is the length of the underlying series.  Peak indices become
    segment boundaries: for peaks at indices ``p1 < p2 < ...`` the segments
    are ``[0, p1), [p1, p2), ..., [pk, n)``.  Duplicate or out-of-range
    peak indices are dropped; with no usable peaks the single segment
    ``[0, n)`` is returned.  Empty segments are never produced.
    """
    if n < 0:
        raise ValidationError(f"series length must be >= 0, got {n}")
    if n == 0:
        return []
    cut_points = sorted({p.index for p in peaks if 0 < p.index < n})
    bounds: List[Tuple[int, int]] = []
    start = 0
    for cut in cut_points:
        if cut > start:
            bounds.append((start, cut))
            start = cut
    bounds.append((start, n))
    return bounds


def segment_labels(n: int, peaks: Sequence[Peak]) -> np.ndarray:
    """Integer segment label per series element, from the same cuts.

    Labels are ``0 .. num_segments - 1`` in chronological order.
    """
    labels = np.zeros(n, dtype=int)
    for seg_id, (start, stop) in enumerate(segment_bounds_from_peaks(n, peaks)):
        labels[start:stop] = seg_id
    return labels
