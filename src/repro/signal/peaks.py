"""Peak finding and U-shape detection on indicator curves.

The joint detector (paper Fig. 1) reasons about the *shape* of indicator
curves: an attack confined to a time interval produces a statistic peak at
the attack's start and another at its end -- the curve rises, falls back,
and rises again, bracketing the suspicious interval.  The paper calls this
configuration a "U-shape" (the valley between two significant peaks).

:func:`find_peaks` extracts significant local maxima; :func:`detect_u_shape`
returns the interval bracketed by the two strongest sufficiently separated
peaks, if the curve has one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.signal.curves import Curve
from repro.utils.validation import check_non_negative, check_positive_int

__all__ = ["Peak", "UShape", "find_peaks", "detect_u_shape"]


@dataclass(frozen=True)
class Peak:
    """A significant local maximum on an indicator curve.

    ``position`` is the index *into the curve*; ``index`` is the
    corresponding index into the underlying series (rating index or day
    index); ``time`` is in days; ``height`` is the statistic value.
    """

    position: int
    index: int
    time: float
    height: float


@dataclass(frozen=True)
class UShape:
    """Two peaks bracketing a suspicious valley.

    ``left`` and ``right`` are the bracketing :class:`Peak` objects; the
    suspicious interval is ``[left.time, right.time]`` (inclusive on both
    ends -- the attack's first and last ratings sit *at* the peaks).
    """

    left: Peak
    right: Peak

    @property
    def start_time(self) -> float:
        """Start of the suspicious interval (days)."""
        return self.left.time

    @property
    def stop_time(self) -> float:
        """End of the suspicious interval (days)."""
        return self.right.time

    @property
    def duration(self) -> float:
        """Length of the suspicious interval (days)."""
        return self.right.time - self.left.time


def find_peaks(curve: Curve, threshold: float, min_separation: int = 1) -> List[Peak]:
    """Return significant local maxima of ``curve``.

    A point is a peak when its value is strictly greater than its smaller
    neighbour and at least equal to the other (plateau edges count once),
    exceeds ``threshold``, and is at least ``min_separation`` curve points
    away from any previously accepted higher peak (greedy by height).
    Curve endpoints can be peaks (an attack touching the stream boundary
    produces only one interior flank).
    """
    check_non_negative(threshold, "threshold")
    min_separation = check_positive_int(min_separation, "min_separation")
    v = curve.values
    n = v.size
    if n == 0:
        return []
    candidates: List[int] = []
    for i in range(n):
        left_ok = i == 0 or v[i] >= v[i - 1]
        right_ok = i == n - 1 or v[i] >= v[i + 1]
        strict = (i > 0 and v[i] > v[i - 1]) or (i < n - 1 and v[i] > v[i + 1]) or n == 1
        if left_ok and right_ok and strict and v[i] > threshold:
            candidates.append(i)
    # Greedy non-maximum suppression by height.
    candidates.sort(key=lambda i: (-v[i], i))
    accepted: List[int] = []
    for i in candidates:
        if all(abs(i - j) >= min_separation for j in accepted):
            accepted.append(i)
    accepted.sort()
    return [
        Peak(
            position=i,
            index=int(curve.indices[i]),
            time=float(curve.times[i]),
            height=float(v[i]),
        )
        for i in accepted
    ]


def detect_u_shape(
    curve: Curve, threshold: float, min_separation: int = 2
) -> Optional[UShape]:
    """Detect a U-shape: two significant peaks with a valley between.

    Returns the :class:`UShape` spanned by the two *highest* peaks that are
    at least ``min_separation`` curve points apart and whose valley dips
    below half the lower peak (so two samples of one wide plateau do not
    qualify).  ``None`` when the curve has no such configuration.
    """
    peaks = find_peaks(curve, threshold, min_separation)
    if len(peaks) < 2:
        return None
    ranked = sorted(peaks, key=lambda p: -p.height)
    for i in range(len(ranked)):
        for j in range(i + 1, len(ranked)):
            a, b = ranked[i], ranked[j]
            left, right = (a, b) if a.position < b.position else (b, a)
            between = curve.values[left.position + 1 : right.position]
            if between.size == 0:
                continue
            valley = float(between.min())
            lower_peak = min(left.height, right.height)
            if valley <= 0.5 * lower_peak:
                return UShape(left=left, right=right)
    return None
