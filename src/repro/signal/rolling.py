"""Vectorized sliding-window statistic kernels (bit-identical fast path).

The indicator-curve builders in :mod:`repro.signal.curves` historically
recomputed full window statistics at every step: one Python-level call per
window centre, each paying numpy dispatch overhead for a handful of
floats.  The kernels here compute the *same* statistics for **all**
windows of one length in a single vectorized pass.

Bit-identical by construction
-----------------------------
The detection pipeline's determinism contracts (telemetry parity, ledger
digests, cached detection reports) require the fast path to produce the
*exact same bits* as the per-window loops it replaces, not merely values
within tolerance.  That rules out the textbook rolling-sum/prefix-sum
update: sequential accumulation rounds differently from numpy's pairwise
reduction, so a prefix-sum mean differs from ``window.mean()`` in the
last ulp.  Instead every kernel evaluates each window with the **same
reduction algorithm** the naive loop used, batched across windows:

- ``sliding_means`` / ``sliding_vars`` reduce the rows of a
  ``sliding_window_view``; numpy applies its pairwise summation per row
  exactly as it does for a 1-D contiguous slice, so row ``i`` equals
  ``x[i:i+width].mean()`` bitwise.
- the GLRT combiners below mirror the scalar expression trees of
  :func:`repro.signal.glrt.gaussian_mean_change_statistic` and
  :func:`repro.signal.poisson.poisson_rate_change_statistic` operation
  for operation (same associativity, same ufunc loops), so elementwise
  IEEE arithmetic reproduces the scalar results.
- ``two_cluster_balance`` sorts whole window stacks at once; cluster
  sizes depend only on the sorted value sequence and the arg-max of the
  adjacent gaps, both of which are algorithm-independent.

The equivalences are pinned by ``tests/property/test_incremental_curves.py``
with ``np.array_equal`` (no tolerance) against retained naive reference
implementations.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "sliding_means",
    "sliding_vars",
    "centered_half_widths",
    "mean_change_stats_equal_halves",
    "rate_change_stats_equal_halves",
    "two_cluster_balance",
]


def sliding_means(x: np.ndarray, width: int) -> np.ndarray:
    """Means of every length-``width`` window of ``x``.

    ``out[i] == x[i:i+width].mean()`` bit-for-bit (the row reduction of a
    sliding window view runs the same pairwise summation as the 1-D
    slice).  Empty when ``x.size < width``.
    """
    x = np.asarray(x, dtype=float)
    if x.size < width:
        return np.empty(0, dtype=float)
    return sliding_window_view(x, width).mean(axis=1)


def sliding_vars(x: np.ndarray, width: int) -> np.ndarray:
    """Variances of every length-``width`` window of ``x`` (see
    :func:`sliding_means` for the bitwise guarantee)."""
    x = np.asarray(x, dtype=float)
    if x.size < width:
        return np.empty(0, dtype=float)
    return sliding_window_view(x, width).var(axis=1)


def centered_half_widths(n: int, half_width: int) -> tuple:
    """``(centers, halves)`` for every valid change-point centre.

    Vectorized equivalent of :func:`repro.utils.windows.centered_windows`
    for the symmetric-shrink case: centres run ``1 .. n-1`` and each
    window is ``[c - h, c + h)`` with ``h = min(half_width, c, n - c)``
    (always ``>= 1``, so both halves are non-empty).
    """
    if n < 2:
        empty = np.empty(0, dtype=int)
        return empty, empty
    centers = np.arange(1, n)
    halves = np.minimum(half_width, np.minimum(centers, n - centers))
    return centers, halves


def mean_change_stats_equal_halves(
    values: np.ndarray, centers: np.ndarray, halves: np.ndarray
) -> np.ndarray:
    """Gaussian mean-change statistics at ``centers`` with equal halves.

    For each centre ``c`` with half-width ``h`` the statistic is the one
    :func:`~repro.signal.glrt.gaussian_mean_change_statistic` computes for
    ``values[c-h:c]`` vs ``values[c:c+h]``.  Windows are grouped by ``h``
    so each distinct half-width costs one vectorized pass.
    """
    values = np.asarray(values, dtype=float)
    stats = np.empty(centers.size, dtype=float)
    for h in np.unique(halves):
        h = int(h)
        sel = halves == h
        c = centers[sel]
        means = sliding_means(values, h)
        diff = means[c - h] - means[c]
        # Same expression tree as the scalar statistic:
        # 2.0 * (n1 * n2) / (n1 + n2) * diff * diff  with  n1 == n2 == h.
        coefficient = 2.0 * (h * h) / (h + h)
        stats[sel] = coefficient * diff * diff
    return stats


def _xlogx_vec(means: np.ndarray) -> np.ndarray:
    """Vectorized ``x ln x`` with the ``0 ln 0 = 0`` convention."""
    out = np.zeros(means.size, dtype=float)
    positive = means > 0.0
    out[positive] = means[positive] * np.log(means[positive])
    return out


def rate_change_stats_equal_halves(
    counts: np.ndarray,
    centers: np.ndarray,
    halves: np.ndarray,
    total_llr: bool,
) -> np.ndarray:
    """Poisson rate-change statistics at ``centers`` with equal halves.

    Matches :func:`~repro.signal.poisson.poisson_rate_change_statistic`
    applied to ``counts[c-h:c]`` vs ``counts[c:c+h]`` for every centre,
    grouped by half-width exactly like
    :func:`mean_change_stats_equal_halves`.
    """
    counts = np.asarray(counts, dtype=float)
    stats = np.empty(centers.size, dtype=float)
    for h in np.unique(halves):
        h = int(h)
        sel = halves == h
        c = centers[sel]
        means = sliding_means(counts, h)
        mean1 = means[c - h]
        mean2 = means[c]
        total_days = h + h
        pooled = (h * mean1 + h * mean2) / total_days
        statistic = (
            (h / total_days) * _xlogx_vec(mean1)
            + (h / total_days) * _xlogx_vec(mean2)
            - _xlogx_vec(pooled)
        )
        statistic = np.maximum(statistic, 0.0)
        if total_llr:
            statistic = statistic * total_days
        stats[sel] = statistic
    return stats


def two_cluster_balance(windows: np.ndarray) -> np.ndarray:
    """HC balance ``min(n1/n2, n2/n1)`` for a stack of value windows.

    ``windows`` is ``(num_windows, width)``; each row is clustered exactly
    like :func:`repro.signal.clustering.two_cluster_split_1d`: split the
    sorted row at its *last* largest adjacent gap, ``0.0`` when all values
    coincide.  Rows from different streams may be stacked freely -- each
    row is independent -- which is what lets the joint detector run one
    clustering pass for a whole dataset.
    """
    windows = np.asarray(windows, dtype=float)
    if windows.size == 0:
        return np.empty(0, dtype=float)
    ordered = np.sort(windows, axis=1)
    gaps = np.diff(ordered, axis=1)
    max_gap = gaps.max(axis=1)
    # Last largest gap: first-max of the reversed gap rows.
    split_after = (gaps.shape[1] - 1) - np.argmax(gaps[:, ::-1], axis=1)
    n1 = split_after + 1
    n2 = windows.shape[1] - n1
    balance = np.minimum(n1 / n2, n2 / n1)
    return np.where(max_gap <= 0.0, 0.0, balance)
