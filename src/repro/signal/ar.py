"""Autoregressive modeling by the covariance method.

Paper, Section IV-E: within a window, the ratings are fit onto an AR signal
model and the *model error* is examined.  A high model error means the
window looks like white noise (honest, independent ratings); a low model
error means a predictable "signal" is present, which is the signature of
collaborative unfair ratings.

The covariance method (Hayes, *Statistical Digital Signal Processing and
Modeling*) finds AR coefficients ``a_1 .. a_p`` minimizing the forward
prediction error

    E = sum_{n=p}^{N-1} | x[n] + sum_{k=1}^{p} a_k x[n-k] |^2

by solving the covariance normal equations.  Unlike the autocorrelation
method it does not window the data, so it is exact for short records --
which matters here because detector windows hold only ~40 ratings.

We report the *normalized* model error ``E / ((N - p) * var(x))`` so the
statistic is scale-free: 1.0 for white noise in expectation, near 0.0 for
a strongly predictable signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EmptyDataError, ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["ARFit", "fit_ar_covariance", "model_error"]


@dataclass(frozen=True)
class ARFit:
    """Result of fitting an AR(p) model with the covariance method.

    Attributes
    ----------
    order:
        Model order ``p``.
    coefficients:
        Array ``[a_1, ..., a_p]`` in the convention
        ``x[n] ~= -(a_1 x[n-1] + ... + a_p x[n-p])``.
    error_power:
        Total squared prediction error ``E`` over the fit range.
    normalized_error:
        ``E / ((N - p) * var(x))`` -- scale-free model error in ``[0, ~1+]``.
        Defined as 1.0 when the window has zero variance (a constant window
        is perfectly "predictable" only trivially; treating it as noise-free
        signal would make unanimous fair ratings look like attacks).
    """

    order: int
    coefficients: np.ndarray
    error_power: float
    normalized_error: float


def _covariance_normal_equations(x: np.ndarray, order: int):
    """Build the covariance-method normal equations ``C a = -c``.

    ``C[i, j] = sum_n x[n-1-i] x[n-1-j]`` and ``c[i] = sum_n x[n] x[n-1-i]``
    for ``n = order .. N-1``.
    """
    n = x.size
    rows = n - order
    # Design matrix: row t holds [x[order-1+t], x[order-2+t], ..., x[t]],
    # i.e. the length-``order`` sliding windows of ``x``, reversed.  The
    # copy keeps the matrix contiguous so the BLAS products below see the
    # same memory layout (and produce the same bits) as the old per-lag
    # column fill.
    design = np.ascontiguousarray(
        np.lib.stride_tricks.sliding_window_view(x, order)[:rows, ::-1]
    ).astype(float, copy=False)
    target = x[order:]
    gram = design.T @ design
    cross = design.T @ target
    return gram, cross, design, target


def fit_ar_covariance(x: np.ndarray, order: int) -> ARFit:
    """Fit an AR(``order``) model to ``x`` via the covariance method.

    Requires ``len(x) >= 2 * order`` so the normal equations are at least
    square-determined; raises :class:`~repro.errors.ValidationError`
    otherwise.  Singular windows (e.g. all-constant data) are handled with
    a pseudo-inverse solve.
    """
    x = np.asarray(x, dtype=float)
    order = check_positive_int(order, "order")
    if x.size == 0:
        raise EmptyDataError("cannot fit an AR model to an empty window")
    if x.size < 2 * order:
        raise ValidationError(
            f"AR({order}) covariance fit needs at least {2 * order} samples, got {x.size}"
        )
    gram, cross, design, target = _covariance_normal_equations(x, order)
    try:
        solution = np.linalg.solve(gram, cross)
    except np.linalg.LinAlgError:
        solution = np.linalg.pinv(gram) @ cross
    coefficients = -solution  # convention: x[n] + sum a_k x[n-k] = residual
    residual = target - design @ solution
    error_power = float(residual @ residual)
    variance = float(x.var())
    if variance <= 1e-12:
        normalized = 1.0
    else:
        normalized = error_power / ((x.size - order) * variance)
    coefficients.setflags(write=False)
    return ARFit(
        order=order,
        coefficients=coefficients,
        error_power=error_power,
        normalized_error=float(normalized),
    )


def model_error(x: np.ndarray, order: int = 4) -> float:
    """Convenience wrapper returning only the normalized model error."""
    return fit_ar_covariance(x, order).normalized_error
