"""Autoregressive modeling by the covariance method.

Paper, Section IV-E: within a window, the ratings are fit onto an AR signal
model and the *model error* is examined.  A high model error means the
window looks like white noise (honest, independent ratings); a low model
error means a predictable "signal" is present, which is the signature of
collaborative unfair ratings.

The covariance method (Hayes, *Statistical Digital Signal Processing and
Modeling*) finds AR coefficients ``a_1 .. a_p`` minimizing the forward
prediction error

    E = sum_{n=p}^{N-1} | x[n] + sum_{k=1}^{p} a_k x[n-k] |^2

by solving the covariance normal equations.  Unlike the autocorrelation
method it does not window the data, so it is exact for short records --
which matters here because detector windows hold only ~40 ratings.

We report the *normalized* model error ``E / ((N - p) * var(x))`` so the
statistic is scale-free: 1.0 for white noise in expectation, near 0.0 for
a strongly predictable signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EmptyDataError, ValidationError
from repro.utils.validation import check_positive_int

__all__ = [
    "ARFit",
    "fit_ar_covariance",
    "model_error",
    "sliding_ar_operands",
    "normalized_errors_from_operands",
    "sliding_ar_normalized_errors",
]


@dataclass(frozen=True)
class ARFit:
    """Result of fitting an AR(p) model with the covariance method.

    Attributes
    ----------
    order:
        Model order ``p``.
    coefficients:
        Array ``[a_1, ..., a_p]`` in the convention
        ``x[n] ~= -(a_1 x[n-1] + ... + a_p x[n-p])``.
    error_power:
        Total squared prediction error ``E`` over the fit range.
    normalized_error:
        ``E / ((N - p) * var(x))`` -- scale-free model error in ``[0, ~1+]``.
        Defined as 1.0 when the window has zero variance (a constant window
        is perfectly "predictable" only trivially; treating it as noise-free
        signal would make unanimous fair ratings look like attacks).
    """

    order: int
    coefficients: np.ndarray
    error_power: float
    normalized_error: float


def _covariance_normal_equations(x: np.ndarray, order: int):
    """Build the covariance-method normal equations ``C a = -c``.

    ``C[i, j] = sum_n x[n-1-i] x[n-1-j]`` and ``c[i] = sum_n x[n] x[n-1-i]``
    for ``n = order .. N-1``.
    """
    n = x.size
    rows = n - order
    # Design matrix: row t holds [x[order-1+t], x[order-2+t], ..., x[t]],
    # i.e. the length-``order`` sliding windows of ``x``, reversed.  The
    # copy keeps the matrix contiguous so the BLAS products below see the
    # same memory layout (and produce the same bits) as the old per-lag
    # column fill.
    design = np.ascontiguousarray(
        np.lib.stride_tricks.sliding_window_view(x, order)[:rows, ::-1]
    ).astype(float, copy=False)
    target = x[order:]
    gram = design.T @ design
    cross = design.T @ target
    return gram, cross, design, target


def fit_ar_covariance(x: np.ndarray, order: int) -> ARFit:
    """Fit an AR(``order``) model to ``x`` via the covariance method.

    Requires ``len(x) >= 2 * order`` so the normal equations are at least
    square-determined; raises :class:`~repro.errors.ValidationError`
    otherwise.  Singular windows (e.g. all-constant data) are handled with
    a pseudo-inverse solve.
    """
    x = np.asarray(x, dtype=float)
    order = check_positive_int(order, "order")
    if x.size == 0:
        raise EmptyDataError("cannot fit an AR model to an empty window")
    if x.size < 2 * order:
        raise ValidationError(
            f"AR({order}) covariance fit needs at least {2 * order} samples, got {x.size}"
        )
    gram, cross, design, target = _covariance_normal_equations(x, order)
    try:
        solution = np.linalg.solve(gram, cross)
    except np.linalg.LinAlgError:
        solution = np.linalg.pinv(gram) @ cross
    coefficients = -solution  # convention: x[n] + sum a_k x[n-k] = residual
    residual = target - design @ solution
    error_power = float(residual @ residual)
    variance = float(x.var())
    if variance <= 1e-12:
        normalized = 1.0
    else:
        normalized = error_power / ((x.size - order) * variance)
    coefficients.setflags(write=False)
    return ARFit(
        order=order,
        coefficients=coefficients,
        error_power=error_power,
        normalized_error=float(normalized),
    )


def model_error(x: np.ndarray, order: int = 4) -> float:
    """Convenience wrapper returning only the normalized model error."""
    return fit_ar_covariance(x, order).normalized_error


# --------------------------------------------------------------------- #
# Sliding-window fast path
#
# The ME indicator curve fits an AR model in every length-``window``
# window of a stream.  Successive windows share all but one row of their
# covariance-method design matrix, so instead of rebuilding (and
# re-multiplying) the matrix per window, the whole stack of designs is
# materialized once from the global sliding-window view and every gram
# matrix / cross vector / solve / residual runs as one batched gufunc
# pass.  Each batch slice sees exactly the operands the per-window
# :func:`fit_ar_covariance` would build (same values, same contiguous
# layout), and numpy's stacked matmul / solve dispatch the identical BLAS
# and LAPACK routines per slice -- so the results are bit-identical to
# the naive loop (property-pinned in the curve test suite).
# --------------------------------------------------------------------- #


def sliding_ar_operands(x: np.ndarray, window: int, order: int):
    """``(designs, targets)`` for every length-``window`` window of ``x``.

    ``designs`` is ``(K, window - order, order)`` with ``designs[s]``
    bit-equal to the contiguous design matrix ``fit_ar_covariance`` builds
    for ``x[s:s+window]``; ``targets[s]`` is the matching prediction
    target ``x[s+order : s+window]``.  ``K = x.size - window + 1``.
    """
    x = np.asarray(x, dtype=float)
    rows = window - order
    num_windows = x.size - window + 1
    if num_windows <= 0:
        return (
            np.empty((0, max(rows, 0), order), dtype=float),
            np.empty((0, max(rows, 0)), dtype=float),
        )
    lagged = np.lib.stride_tricks.sliding_window_view(x, order)[:, ::-1]
    designs = np.ascontiguousarray(
        np.lib.stride_tricks.sliding_window_view(lagged, (rows, order))[
            :num_windows, 0
        ]
    )
    targets = np.lib.stride_tricks.sliding_window_view(x[order:], rows)[
        :num_windows
    ]
    return designs, targets


def normalized_errors_from_operands(
    designs: np.ndarray,
    targets: np.ndarray,
    variances: np.ndarray,
    order: int,
) -> np.ndarray:
    """Normalized AR model errors for a stack of window operands.

    One batched gram / solve / residual pass over all windows; raises
    :class:`numpy.linalg.LinAlgError` when any window's normal equations
    are singular (callers fall back to the per-window pinv path for that
    stream).  ``variances`` holds each window's value variance; windows
    with (near-)zero variance get error ``1.0``, matching
    :func:`fit_ar_covariance`.
    """
    rows = targets.shape[1]
    window = rows + order
    transposed = designs.transpose(0, 2, 1)
    grams = np.matmul(transposed, designs)
    crosses = np.matmul(transposed, targets[:, :, None])
    solutions = np.linalg.solve(grams, crosses)
    residuals = targets - np.matmul(designs, solutions)[:, :, 0]
    error_powers = np.matmul(residuals[:, None, :], residuals[:, :, None])[
        :, 0, 0
    ]
    with np.errstate(divide="ignore", invalid="ignore"):
        normalized = error_powers / ((window - order) * variances)
    return np.where(variances <= 1e-12, 1.0, normalized)


def sliding_ar_normalized_errors(
    x: np.ndarray, window: int, order: int
) -> np.ndarray:
    """Normalized model error of every length-``window`` window of ``x``.

    ``out[s]`` equals ``fit_ar_covariance(x[s:s+window], order)
    .normalized_error`` bit-for-bit.  Streams containing a singular
    window (e.g. constant values) fall back to the per-window fit, which
    handles singularity with the pseudo-inverse.
    """
    x = np.asarray(x, dtype=float)
    order = check_positive_int(order, "order")
    if window < 2 * order:
        raise ValidationError(
            f"AR({order}) covariance fit needs windows of at least "
            f"{2 * order} samples, got {window}"
        )
    num_windows = x.size - window + 1
    if num_windows <= 0:
        return np.empty(0, dtype=float)
    designs, targets = sliding_ar_operands(x, window, order)
    variances = np.lib.stride_tricks.sliding_window_view(x, window).var(axis=1)
    try:
        return normalized_errors_from_operands(designs, targets, variances, order)
    except np.linalg.LinAlgError:
        return np.asarray(
            [
                fit_ar_covariance(x[s : s + window], order).normalized_error
                for s in range(num_windows)
            ],
            dtype=float,
        )
