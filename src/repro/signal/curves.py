"""Sliding-window indicator-curve construction.

Each detector in the paper produces a curve of a test statistic versus
time, built by sliding a window over the rating stream:

- **MC curve** (Section IV-B.2): Gaussian mean-change statistic.  The paper
  states windows are constructed "either by making them contain the same
  number of ratings or have the same time duration"; the challenge deploy
  used 30-*day* MC windows, so both variants are provided.
- **ARC curve** (Section IV-C.2): Poisson rate-change statistic over the
  daily-count series, centre ``k' = k + D``, shrinking windows at edges.
- **HC curve** (Section IV-D): two-cluster balance ``min(n1/n2, n2/n1)``
  over rating-count windows.
- **ME curve** (Section IV-E): normalized AR model error over rating-count
  windows.

All constructors return a :class:`Curve`: aligned arrays of evaluation
times, evaluation indices (index into the underlying series), and
statistic values.

Every builder runs on the vectorized fast path: windows are evaluated in
batched passes (grouped by window size where sizes shrink at the edges)
instead of one Python-level statistic call per centre, while producing
**bit-identical** values to the per-window formulation -- see
:mod:`repro.signal.rolling` for how that guarantee is kept and
``tests/property/test_incremental_curves.py`` for the exact-equality
pinning against the retained naive references.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ValidationError
from repro.signal.ar import sliding_ar_normalized_errors
from repro.signal.rolling import (
    centered_half_widths,
    mean_change_stats_equal_halves,
    rate_change_stats_equal_halves,
    two_cluster_balance,
)
from repro.utils.validation import check_positive, check_positive_int

__all__ = [
    "Curve",
    "mean_change_curve_by_count",
    "mean_change_curve_by_time",
    "arrival_rate_curve",
    "histogram_change_curve",
    "histogram_change_curve_from_stats",
    "model_error_curve",
    "model_error_curve_from_errors",
]


@dataclass(frozen=True)
class Curve:
    """An indicator curve: a statistic evaluated along a rating stream.

    Attributes
    ----------
    kind:
        Which detector produced the curve (``"MC"``, ``"ARC"``, ``"H-ARC"``,
        ``"L-ARC"``, ``"HC"``, ``"ME"``).
    times:
        Evaluation times (days), one per point.
    indices:
        For rating-indexed curves: the rating index at the window centre.
        For day-indexed curves (ARC): the day index.  Aligned with ``times``.
    values:
        The statistic values.
    """

    kind: str
    times: np.ndarray
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if not (self.times.size == self.indices.size == self.values.size):
            raise ValidationError("curve arrays must be aligned")
        for arr in (self.times, self.indices, self.values):
            arr.setflags(write=False)

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def is_empty(self) -> bool:
        """Whether the curve has no evaluation points."""
        return self.values.size == 0

    def max_value(self) -> float:
        """Largest statistic on the curve (``0.0`` for an empty curve)."""
        return float(self.values.max()) if self.values.size else 0.0

    def above(self, threshold: float) -> np.ndarray:
        """Boolean mask of points with ``value > threshold``."""
        return self.values > threshold

    def below(self, threshold: float) -> np.ndarray:
        """Boolean mask of points with ``value < threshold``."""
        return self.values < threshold


def _empty_curve(kind: str) -> Curve:
    return Curve(
        kind=kind,
        times=np.array([], dtype=float),
        indices=np.array([], dtype=int),
        values=np.array([], dtype=float),
    )


def mean_change_curve_by_count(
    times: np.ndarray, values: np.ndarray, half_width: int
) -> Curve:
    """MC curve with rating-count windows of half-width ``half_width``.

    ``MC(k)`` tests a mean change between ratings ``[k-W, k)`` and
    ``[k, k+W)`` (shrinking symmetrically near the edges), evaluated for
    every centre ``k`` in ``1 .. n-1``.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    half_width = check_positive_int(half_width, "half_width")
    if values.size < 2:
        return _empty_curve("MC")
    centers, halves = centered_half_widths(values.size, half_width)
    stats = mean_change_stats_equal_halves(values, centers, halves)
    return Curve(
        kind="MC",
        times=times[centers],
        indices=centers,
        values=stats,
    )


def mean_change_curve_by_time(
    times: np.ndarray, values: np.ndarray, window_days: float
) -> Curve:
    """MC curve with fixed-duration windows of ``window_days`` days.

    At each rating index ``k`` the two halves are the ratings in
    ``[t(k) - window_days/2, t(k))`` and ``[t(k), t(k) + window_days/2)``.
    Centres where either half is empty get statistic ``0`` (no evidence of
    change is obtainable there).

    The halves at each centre are located with two ``searchsorted`` sweeps
    (equivalent to the historical two-pointer scan); the half means are
    then computed per distinct half length by gathering exactly the needed
    windows into a row matrix and reducing row-wise (bit-equal to the
    per-slice mean, same pairwise reduction), so the whole curve is built
    without a per-centre Python loop and without touching windows no
    centre asked for.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    window_days = check_positive(window_days, "window_days")
    n = values.size
    if n < 2:
        return _empty_curve("MC")
    half = window_days / 2.0
    centers = np.arange(n)
    lo = np.searchsorted(times, times - half, side="left")
    hi = np.searchsorted(times, times + half, side="left")
    first_len = centers - lo
    second_len = hi - centers
    valid = (first_len > 0) & (second_len > 0)
    stats = np.zeros(n, dtype=float)
    if valid.any():
        first_mean = np.empty(n, dtype=float)
        second_mean = np.empty(n, dtype=float)
        for length in np.unique(first_len[valid]):
            length = int(length)
            sel = valid & (first_len == length)
            starts = centers[sel] - length
            first_mean[sel] = values[starts[:, None] + np.arange(length)].mean(
                axis=1
            )
        for length in np.unique(second_len[valid]):
            length = int(length)
            sel = valid & (second_len == length)
            starts = centers[sel]
            second_mean[sel] = values[starts[:, None] + np.arange(length)].mean(
                axis=1
            )
        n1 = first_len[valid]
        n2 = second_len[valid]
        diff = first_mean[valid] - second_mean[valid]
        # Same expression tree as gaussian_mean_change_statistic.
        coefficient = 2.0 * (n1 * n2) / (n1 + n2)
        stats[valid] = coefficient * diff * diff
    return Curve(kind="MC", times=times.copy(), indices=centers, values=stats)


def arrival_rate_curve(
    days: np.ndarray,
    counts: np.ndarray,
    half_width_days: int,
    kind: str = "ARC",
    total_llr: bool = True,
) -> Curve:
    """ARC curve over a daily-count series with half-width ``D`` days.

    ``ARC(k')`` is the Poisson GLRT statistic between counts
    ``[k'-D, k')`` and ``[k', k'+D)``; edge windows shrink symmetrically
    (Section IV-C.2).  ``days`` holds the day index of each count.

    With ``total_llr=True`` (default) each point is the *total*
    log-likelihood ratio of its window (statistic times window length),
    which keeps one absolute threshold valid across window sizes; with
    ``False`` it is the paper's per-day form (Eq. 5 left-hand side).
    """
    days = np.asarray(days, dtype=float)
    counts = np.asarray(counts, dtype=float)
    if days.size != counts.size:
        raise ValidationError("days and counts must be aligned")
    half_width_days = check_positive_int(half_width_days, "half_width_days")
    if counts.size < 2:
        return _empty_curve(kind)
    if np.any(counts < 0):
        raise ValidationError("daily counts must be non-negative")
    centers, halves = centered_half_widths(counts.size, half_width_days)
    stats = rate_change_stats_equal_halves(counts, centers, halves, total_llr)
    return Curve(
        kind=kind,
        times=days[centers],
        indices=centers,
        values=stats,
    )


def _full_window_centers(n: int, window: int) -> np.ndarray:
    """Centre indices of the length-``window`` sliding windows of a
    length-``n`` series (window start + ``window // 2``)."""
    return np.arange(0, n - window + 1) + window // 2


def histogram_change_curve_from_stats(
    times: np.ndarray, stats: np.ndarray, window_ratings: int
) -> Curve:
    """Assemble an HC :class:`Curve` from precomputed balance statistics.

    ``stats[i]`` is the balance of the window starting at rating ``i``;
    used by the per-stream builder below and by the joint detector's
    cross-stream batch, which computes all streams' balances in one
    clustering pass.
    """
    times = np.asarray(times, dtype=float)
    centers = _full_window_centers(times.size, window_ratings)
    return Curve(
        kind="HC",
        times=times[centers],
        indices=centers,
        values=np.asarray(stats, dtype=float),
    )


def histogram_change_curve(
    times: np.ndarray, values: np.ndarray, window_ratings: int
) -> Curve:
    """HC curve: two-cluster balance over rating-count windows.

    Within each window of ``window_ratings`` ratings (sliding by one), the
    values are split into two single-linkage clusters of sizes ``n1, n2``
    and ``HC = min(n1/n2, n2/n1)``.  A window whose values collapse into a
    single cluster gets ``HC = 0``.  The curve is indexed by the window's
    centre rating.  Values near ``1`` mean a balanced bimodal histogram --
    the signature of a sizeable block of unfair ratings far from the fair
    mode.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    window_ratings = check_positive_int(window_ratings, "window_ratings", minimum=2)
    n = values.size
    if n < window_ratings:
        return _empty_curve("HC")
    stats = two_cluster_balance(sliding_window_view(values, window_ratings))
    return histogram_change_curve_from_stats(times, stats, window_ratings)


def model_error_curve_from_errors(
    times: np.ndarray, errors: np.ndarray, window_ratings: int
) -> Curve:
    """Assemble an ME :class:`Curve` from precomputed normalized errors.

    ``errors[i]`` belongs to the window starting at rating ``i``; the
    joint detector's cross-stream batch solves every stream's AR normal
    equations in one pass and hands the per-stream error slices here.
    """
    times = np.asarray(times, dtype=float)
    centers = _full_window_centers(times.size, window_ratings)
    return Curve(
        kind="ME",
        times=times[centers],
        indices=centers,
        values=np.asarray(errors, dtype=float),
    )


def model_error_curve(
    times: np.ndarray, values: np.ndarray, window_ratings: int, order: int = 4
) -> Curve:
    """ME curve: normalized AR model error over rating-count windows.

    Low model error means the window contains a predictable signal, i.e.
    likely collaborative unfair ratings (Section IV-E).
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    window_ratings = check_positive_int(window_ratings, "window_ratings", minimum=2)
    order = check_positive_int(order, "order")
    if window_ratings < 2 * order:
        raise ValidationError(
            f"window_ratings={window_ratings} too small for AR({order}) covariance fit"
        )
    if values.size < window_ratings:
        return _empty_curve("ME")
    errors = sliding_ar_normalized_errors(values, window_ratings, order)
    return model_error_curve_from_errors(times, errors, window_ratings)
