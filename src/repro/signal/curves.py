"""Sliding-window indicator-curve construction.

Each detector in the paper produces a curve of a test statistic versus
time, built by sliding a window over the rating stream:

- **MC curve** (Section IV-B.2): Gaussian mean-change statistic.  The paper
  states windows are constructed "either by making them contain the same
  number of ratings or have the same time duration"; the challenge deploy
  used 30-*day* MC windows, so both variants are provided.
- **ARC curve** (Section IV-C.2): Poisson rate-change statistic over the
  daily-count series, centre ``k' = k + D``, shrinking windows at edges.
- **HC curve** (Section IV-D): two-cluster balance ``min(n1/n2, n2/n1)``
  over rating-count windows.
- **ME curve** (Section IV-E): normalized AR model error over rating-count
  windows.

All constructors return a :class:`Curve`: aligned arrays of evaluation
times, evaluation indices (index into the underlying series), and
statistic values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.signal.ar import fit_ar_covariance
from repro.signal.clustering import two_cluster_split_1d
from repro.signal.glrt import gaussian_mean_change_statistic
from repro.signal.poisson import poisson_rate_change_statistic
from repro.utils.validation import check_positive, check_positive_int
from repro.utils.windows import centered_windows

__all__ = [
    "Curve",
    "mean_change_curve_by_count",
    "mean_change_curve_by_time",
    "arrival_rate_curve",
    "histogram_change_curve",
    "model_error_curve",
]


@dataclass(frozen=True)
class Curve:
    """An indicator curve: a statistic evaluated along a rating stream.

    Attributes
    ----------
    kind:
        Which detector produced the curve (``"MC"``, ``"ARC"``, ``"H-ARC"``,
        ``"L-ARC"``, ``"HC"``, ``"ME"``).
    times:
        Evaluation times (days), one per point.
    indices:
        For rating-indexed curves: the rating index at the window centre.
        For day-indexed curves (ARC): the day index.  Aligned with ``times``.
    values:
        The statistic values.
    """

    kind: str
    times: np.ndarray
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if not (self.times.size == self.indices.size == self.values.size):
            raise ValidationError("curve arrays must be aligned")
        for arr in (self.times, self.indices, self.values):
            arr.setflags(write=False)

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def is_empty(self) -> bool:
        """Whether the curve has no evaluation points."""
        return self.values.size == 0

    def max_value(self) -> float:
        """Largest statistic on the curve (``0.0`` for an empty curve)."""
        return float(self.values.max()) if self.values.size else 0.0

    def above(self, threshold: float) -> np.ndarray:
        """Boolean mask of points with ``value > threshold``."""
        return self.values > threshold

    def below(self, threshold: float) -> np.ndarray:
        """Boolean mask of points with ``value < threshold``."""
        return self.values < threshold


def _empty_curve(kind: str) -> Curve:
    return Curve(
        kind=kind,
        times=np.array([], dtype=float),
        indices=np.array([], dtype=int),
        values=np.array([], dtype=float),
    )


def mean_change_curve_by_count(
    times: np.ndarray, values: np.ndarray, half_width: int
) -> Curve:
    """MC curve with rating-count windows of half-width ``half_width``.

    ``MC(k)`` tests a mean change between ratings ``[k-W, k)`` and
    ``[k, k+W)`` (shrinking symmetrically near the edges), evaluated for
    every centre ``k`` in ``1 .. n-1``.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    half_width = check_positive_int(half_width, "half_width")
    if values.size < 2:
        return _empty_curve("MC")
    centers, stats = [], []
    for center, start, stop in centered_windows(values.size, half_width):
        stats.append(
            gaussian_mean_change_statistic(values[start:center], values[center:stop])
        )
        centers.append(center)
    centers_arr = np.asarray(centers, dtype=int)
    return Curve(
        kind="MC",
        times=times[centers_arr],
        indices=centers_arr,
        values=np.asarray(stats, dtype=float),
    )


def mean_change_curve_by_time(
    times: np.ndarray, values: np.ndarray, window_days: float
) -> Curve:
    """MC curve with fixed-duration windows of ``window_days`` days.

    At each rating index ``k`` the two halves are the ratings in
    ``[t(k) - window_days/2, t(k))`` and ``[t(k), t(k) + window_days/2)``.
    Centres where either half is empty get statistic ``0`` (no evidence of
    change is obtainable there).
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    window_days = check_positive(window_days, "window_days")
    n = values.size
    if n < 2:
        return _empty_curve("MC")
    half = window_days / 2.0
    stats = np.zeros(n, dtype=float)
    # Two-pointer sweep: for each centre k find [lo, k) and [k, hi).
    lo = 0
    hi = 0
    for k in range(n):
        t = times[k]
        while lo < n and times[lo] < t - half:
            lo += 1
        if hi < k:
            hi = k
        while hi < n and times[hi] < t + half:
            hi += 1
        first, second = values[lo:k], values[k:hi]
        if first.size and second.size:
            stats[k] = gaussian_mean_change_statistic(first, second)
    return Curve(kind="MC", times=times.copy(), indices=np.arange(n), values=stats)


def arrival_rate_curve(
    days: np.ndarray,
    counts: np.ndarray,
    half_width_days: int,
    kind: str = "ARC",
    total_llr: bool = True,
) -> Curve:
    """ARC curve over a daily-count series with half-width ``D`` days.

    ``ARC(k')`` is the Poisson GLRT statistic between counts
    ``[k'-D, k')`` and ``[k', k'+D)``; edge windows shrink symmetrically
    (Section IV-C.2).  ``days`` holds the day index of each count.

    With ``total_llr=True`` (default) each point is the *total*
    log-likelihood ratio of its window (statistic times window length),
    which keeps one absolute threshold valid across window sizes; with
    ``False`` it is the paper's per-day form (Eq. 5 left-hand side).
    """
    days = np.asarray(days, dtype=float)
    counts = np.asarray(counts, dtype=float)
    if days.size != counts.size:
        raise ValidationError("days and counts must be aligned")
    half_width_days = check_positive_int(half_width_days, "half_width_days")
    if counts.size < 2:
        return _empty_curve(kind)
    centers, stats = [], []
    for center, start, stop in centered_windows(counts.size, half_width_days):
        stats.append(
            poisson_rate_change_statistic(
                counts[start:center], counts[center:stop], total=total_llr
            )
        )
        centers.append(center)
    centers_arr = np.asarray(centers, dtype=int)
    return Curve(
        kind=kind,
        times=days[centers_arr],
        indices=centers_arr,
        values=np.asarray(stats, dtype=float),
    )


def histogram_change_curve(
    times: np.ndarray, values: np.ndarray, window_ratings: int
) -> Curve:
    """HC curve: two-cluster balance over rating-count windows.

    Within each window of ``window_ratings`` ratings (sliding by one), the
    values are split into two single-linkage clusters of sizes ``n1, n2``
    and ``HC = min(n1/n2, n2/n1)``.  A window whose values collapse into a
    single cluster gets ``HC = 0``.  The curve is indexed by the window's
    centre rating.  Values near ``1`` mean a balanced bimodal histogram --
    the signature of a sizeable block of unfair ratings far from the fair
    mode.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    window_ratings = check_positive_int(window_ratings, "window_ratings", minimum=2)
    n = values.size
    if n < window_ratings:
        return _empty_curve("HC")
    centers, stats = [], []
    for start in range(0, n - window_ratings + 1):
        stop = start + window_ratings
        labels = two_cluster_split_1d(values[start:stop])
        n1 = int(np.sum(labels == 0))
        n2 = int(np.sum(labels == 1))
        if n1 == 0 or n2 == 0:
            stats.append(0.0)
        else:
            stats.append(min(n1 / n2, n2 / n1))
        centers.append(start + window_ratings // 2)
    centers_arr = np.asarray(centers, dtype=int)
    return Curve(
        kind="HC",
        times=times[centers_arr],
        indices=centers_arr,
        values=np.asarray(stats, dtype=float),
    )


def model_error_curve(
    times: np.ndarray, values: np.ndarray, window_ratings: int, order: int = 4
) -> Curve:
    """ME curve: normalized AR model error over rating-count windows.

    Low model error means the window contains a predictable signal, i.e.
    likely collaborative unfair ratings (Section IV-E).
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    window_ratings = check_positive_int(window_ratings, "window_ratings", minimum=2)
    order = check_positive_int(order, "order")
    if window_ratings < 2 * order:
        raise ValidationError(
            f"window_ratings={window_ratings} too small for AR({order}) covariance fit"
        )
    n = values.size
    if n < window_ratings:
        return _empty_curve("ME")
    centers, stats = [], []
    for start in range(0, n - window_ratings + 1):
        stop = start + window_ratings
        fit = fit_ar_covariance(values[start:stop], order)
        stats.append(fit.normalized_error)
        centers.append(start + window_ratings // 2)
    centers_arr = np.asarray(centers, dtype=int)
    return Curve(
        kind="ME",
        times=times[centers_arr],
        indices=centers_arr,
        values=np.asarray(stats, dtype=float),
    )
