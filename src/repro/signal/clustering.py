"""Single-linkage agglomerative clustering (two-cluster cut).

The paper's histogram change detector (Section IV-D) clusters the rating
values in a window into **two clusters with the simple linkage method**
(Matlab ``clusterdata``) and compares the cluster sizes.  We provide:

- :func:`single_linkage_two_clusters` -- a faithful, general single-linkage
  agglomeration over an arbitrary 1-D sample, returning the two-cluster
  labelling.
- :func:`two_cluster_split_1d` -- the fast path.  For one-dimensional data,
  cutting a single-linkage dendrogram into two clusters is *exactly*
  equivalent to splitting the sorted sample at the largest gap between
  consecutive values (single linkage merges nearest neighbours first, so
  the last surviving link is the largest adjacent gap).  This is O(n log n)
  instead of O(n^2 log n) and is what the detector uses.

Both functions agree on every input (property-tested), ties broken toward
the last maximal gap (matching Kruskal-style agglomeration, which merges
earlier-indexed equal-distance links first, so the last maximal gap is the
one that survives).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import EmptyDataError

__all__ = ["single_linkage_two_clusters", "two_cluster_split_1d"]


def two_cluster_split_1d(values: np.ndarray) -> np.ndarray:
    """Two-cluster single-linkage labels for 1-D ``values``.

    Returns an integer array of 0/1 labels aligned with ``values``.
    Cluster 0 is the cluster containing the smallest value.  For ``n == 1``
    the single point gets label 0 (there is no second cluster; callers that
    need two non-empty clusters must check sizes).  All-equal samples place
    everything in cluster 0.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise EmptyDataError("cannot cluster an empty sample")
    labels = np.zeros(arr.size, dtype=int)
    if arr.size == 1:
        return labels
    order = np.argsort(arr, kind="stable")
    sorted_vals = arr[order]
    gaps = np.diff(sorted_vals)
    if gaps.size == 0 or float(gaps.max()) <= 0.0:
        return labels  # all values identical: one cluster
    # Last largest gap (see module docstring for the tie-breaking rationale).
    split_after = int(gaps.size - 1 - np.argmax(gaps[::-1]))
    labels_sorted = np.zeros(arr.size, dtype=int)
    labels_sorted[split_after + 1 :] = 1
    labels[order] = labels_sorted
    return labels


class _UnionFind:
    """Minimal union-find over ``n`` items with path compression."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.components = n

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, i: int, j: int) -> bool:
        ri, rj = self.find(i), self.find(j)
        if ri == rj:
            return False
        self.parent[max(ri, rj)] = min(ri, rj)
        self.components -= 1
        return True


def single_linkage_two_clusters(values: np.ndarray) -> np.ndarray:
    """General single-linkage agglomeration cut at two clusters.

    Merges the closest pair of clusters repeatedly (cluster distance =
    minimum pairwise point distance) until exactly two clusters remain.
    Returned labels use 0 for the cluster containing the smallest value.
    Quadratic in the sample size; prefer :func:`two_cluster_split_1d` for
    1-D data (they are equivalent there).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise EmptyDataError("cannot cluster an empty sample")
    n = arr.size
    labels = np.zeros(n, dtype=int)
    if n == 1:
        return labels
    if float(arr.max()) == float(arr.min()):
        # All-equal data forms a single cluster (any 2-cluster cut would
        # split at distance zero, which is no histogram change at all).
        return labels
    # All pairwise distances, sorted ascending; single linkage is Kruskal.
    ii, jj = np.triu_indices(n, k=1)
    dists = np.abs(arr[ii] - arr[jj])
    order = np.argsort(dists, kind="stable")
    uf = _UnionFind(n)
    for idx in order:
        if uf.components <= 2:
            break
        uf.union(int(ii[idx]), int(jj[idx]))
    if uf.components == 1:  # pragma: no cover - cannot happen with n >= 2
        return labels
    roots = [uf.find(i) for i in range(n)]
    # Cluster 0 must contain the smallest value.
    smallest_root = roots[int(np.argmin(arr))]
    labels = np.asarray([0 if r == smallest_root else 1 for r in roots], dtype=int)
    # Degenerate all-equal data collapses to one component before the loop
    # exits; in that case every root equals smallest_root and labels are 0.
    return labels


def cluster_sizes(labels: np.ndarray) -> Tuple[int, int]:
    """Return ``(n0, n1)`` -- the sizes of clusters 0 and 1."""
    labels = np.asarray(labels, dtype=int)
    return int(np.sum(labels == 0)), int(np.sum(labels == 1))
