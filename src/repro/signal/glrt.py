"""Gaussian mean-change generalized likelihood ratio test.

Paper, Section IV-B.1: inside a window of ``2W`` ratings, model the first
half ``X1`` as i.i.d. Gaussian with mean ``A1`` and the second half ``X2``
as i.i.d. Gaussian with mean ``A2`` (common variance ``sigma^2``), and test

    H0: A1 == A2      vs.      H1: A1 != A2.

The GLRT decides H1 when ``W * (A1_hat - A2_hat)^2 / (2 sigma^2) > gamma``
(paper Eq. 1, from Kay Vol. 2).  The *indicator curve* drops the unknown
``sigma^2`` and plots ``MC(k) = W (A1_hat - A2_hat)^2``.

This module implements the statistic for the general unbalanced case
``len(X1) = n1, len(X2) = n2`` -- needed because the paper's MC detector
windows by *time* (30 days), so the two half-windows rarely contain the
same number of ratings.  The unbalanced Gaussian GLRT energy term is

    (n1 * n2 / (n1 + n2)) * (A1_hat - A2_hat)^2

which we scale by 2 so the balanced case ``n1 = n2 = W`` reduces exactly to
the paper's ``W (A1_hat - A2_hat)^2``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EmptyDataError
from repro.utils.validation import check_positive

__all__ = ["gaussian_mean_change_statistic", "mean_change_decision"]


def gaussian_mean_change_statistic(x1: np.ndarray, x2: np.ndarray) -> float:
    """Return the mean-change energy statistic for two sample halves.

    ``2 * n1 * n2 / (n1 + n2) * (mean(x1) - mean(x2))^2`` -- the paper's
    ``MC(k)`` value, generalized to unbalanced halves.  Raises
    :class:`~repro.errors.EmptyDataError` if either half is empty, because
    a change point with no samples on one side is undefined.
    """
    x1 = np.asarray(x1, dtype=float)
    x2 = np.asarray(x2, dtype=float)
    n1, n2 = x1.size, x2.size
    if n1 == 0 or n2 == 0:
        raise EmptyDataError("both window halves need at least one rating")
    diff = float(x1.mean() - x2.mean())
    return 2.0 * (n1 * n2) / (n1 + n2) * diff * diff


def mean_change_decision(
    x1: np.ndarray, x2: np.ndarray, sigma: float, gamma: float
) -> bool:
    """Full GLRT decision (paper Eq. 1): decide H1 (mean changed)?

    ``sigma`` is the (assumed known) common standard deviation; ``gamma``
    is the detection threshold on ``2 ln L_G(x)``.
    """
    sigma = check_positive(sigma, "sigma")
    statistic = gaussian_mean_change_statistic(x1, x2) / (2.0 * sigma * sigma)
    return bool(statistic > gamma)
