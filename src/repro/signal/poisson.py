"""Poisson arrival-rate-change generalized likelihood ratio test.

Paper, Section IV-C.1: ``y(n)`` is the number of ratings received on day
``n``; within a ``2D``-day window starting at day ``k`` we test whether the
arrival rate changed at day ``k'``:

    H0: lambda1 == lambda2      vs.      H1: lambda1 != lambda2

with ``Y1 = y[k .. k'-1]`` (``a`` days) and ``Y2 = y[k' .. k+2D-1]``
(``b`` days).  The GLRT (paper Eq. 5) decides H1 when

    (a / 2D) * Y1_bar ln Y1_bar + (b / 2D) * Y2_bar ln Y2_bar
        - Y_bar ln Y_bar   >=   (1 / 2D) ln gamma

where ``Y1_bar``, ``Y2_bar`` are the per-day sample means of each half and
``Y_bar`` is the pooled mean.  We use the convention ``0 ln 0 = 0`` (an
empty-rate half contributes no log-likelihood), which is the continuous
limit of the Poisson likelihood.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EmptyDataError

__all__ = ["poisson_rate_change_statistic", "rate_change_decision"]


def _xlogx(value: float) -> float:
    return value * np.log(value) if value > 0.0 else 0.0


def poisson_rate_change_statistic(
    y1: np.ndarray, y2: np.ndarray, total: bool = False
) -> float:
    """Return the left-hand side of paper Eq. 5 for two day-count halves.

    The statistic is non-negative (it is a scaled Kullback-Leibler
    divergence between the split model and the pooled model) and zero when
    both halves have identical sample rates.

    With ``total=True`` the statistic is multiplied by the window length
    ``a + b``, turning it into the total log-likelihood ratio
    ``ln(p[Y; lam1_hat, lam2_hat] / p[Y; lam_hat])``.  Under H0 the total
    LLR is asymptotically ``chi^2_1 / 2`` *independent of the window
    size*, which makes one absolute detection threshold valid for both
    full-size and edge-shrunk windows -- and makes slow-but-sustained rate
    changes (significant only over long windows) detectable.
    """
    y1 = np.asarray(y1, dtype=float)
    y2 = np.asarray(y2, dtype=float)
    a, b = y1.size, y2.size
    if a == 0 or b == 0:
        raise EmptyDataError("both window halves need at least one day of counts")
    if np.any(y1 < 0) or np.any(y2 < 0):
        raise EmptyDataError("daily counts must be non-negative")
    total_days = a + b
    mean1 = float(y1.mean())
    mean2 = float(y2.mean())
    pooled = (a * mean1 + b * mean2) / total_days
    statistic = (
        (a / total_days) * _xlogx(mean1)
        + (b / total_days) * _xlogx(mean2)
        - _xlogx(pooled)
    )
    # Clamp tiny negative values caused by floating-point cancellation.
    statistic = max(float(statistic), 0.0)
    if total:
        statistic *= total_days
    return statistic


def rate_change_decision(y1: np.ndarray, y2: np.ndarray, ln_gamma: float) -> bool:
    """GLRT decision (paper Eq. 5): decide H1 (rate changed)?

    ``ln_gamma`` is ``ln(gamma)``; the comparison threshold is
    ``ln_gamma / (2 D)`` with ``2 D = len(y1) + len(y2)``.
    """
    total_days = np.asarray(y1).size + np.asarray(y2).size
    statistic = poisson_rate_change_statistic(y1, y2)
    return bool(statistic >= ln_gamma / total_days)
