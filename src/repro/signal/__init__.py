"""Statistical signal-processing substrate.

Everything the paper's detectors need, implemented from scratch on numpy:

- :mod:`repro.signal.glrt` -- Gaussian mean-change GLRT (paper Eq. 1).
- :mod:`repro.signal.poisson` -- Poisson arrival-rate-change GLRT (Eqs. 2-5).
- :mod:`repro.signal.ar` -- autoregressive model fitting by the covariance
  method and the model-error statistic (Section IV-E).
- :mod:`repro.signal.clustering` -- single-linkage agglomerative clustering
  (the Matlab ``clusterdata`` replacement for the histogram detector).
- :mod:`repro.signal.curves` -- sliding-window indicator-curve construction.
- :mod:`repro.signal.peaks` -- peak finding and U-shape detection on curves.
- :mod:`repro.signal.segmentation` -- splitting a rating stream into
  segments at curve peaks.
"""

from repro.signal.ar import ARFit, fit_ar_covariance, model_error
from repro.signal.clustering import single_linkage_two_clusters, two_cluster_split_1d
from repro.signal.curves import (
    Curve,
    arrival_rate_curve,
    histogram_change_curve,
    mean_change_curve_by_count,
    mean_change_curve_by_time,
    model_error_curve,
)
from repro.signal.glrt import gaussian_mean_change_statistic, mean_change_decision
from repro.signal.peaks import UShape, detect_u_shape, find_peaks
from repro.signal.poisson import poisson_rate_change_statistic, rate_change_decision
from repro.signal.segmentation import segment_bounds_from_peaks, segment_labels

__all__ = [
    "ARFit",
    "fit_ar_covariance",
    "model_error",
    "single_linkage_two_clusters",
    "two_cluster_split_1d",
    "Curve",
    "arrival_rate_curve",
    "histogram_change_curve",
    "mean_change_curve_by_count",
    "mean_change_curve_by_time",
    "model_error_curve",
    "gaussian_mean_change_statistic",
    "mean_change_decision",
    "UShape",
    "detect_u_shape",
    "find_peaks",
    "poisson_rate_change_statistic",
    "rate_change_decision",
    "segment_bounds_from_peaks",
    "segment_labels",
]
